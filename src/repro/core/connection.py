"""The ``(f, g)`` connection between consecutive stages (§3 of the paper).

    "For all i ≠ n, a connection (f, g) between the i-th stage and the
    (i+1)-st stage of the MI-digraph G is a pair of functions f and g defined
    on Z_2^{n-1} such that, if x is a node of the i-th stage then the two
    children of x in the (i+1)-st stage are f(x) and g(x)."

A :class:`Connection` stores the two functions as NumPy ``int64`` arrays of
length ``M = 2^m`` (``m = n - 1``).  Validation enforces the MI-digraph
degree condition: every next-stage cell must receive exactly two arcs
(counting multiplicity — ``f(x) == g(x)`` is a *double link*, which is
representable because Figure 5 of the paper exhibits exactly that degenerate
situation, but makes the Banyan property impossible).

:class:`AffineConnection` is the algebraic normal form of an *independent*
connection: ``f(x) = B·x ⊕ c_f`` and ``g(x) = B·x ⊕ c_g`` over GF(2) with a
shared linear part ``B``.  See :mod:`repro.core.independence` for the proof
sketch that independence (the paper's §3 definition) is equivalent to the
existence of this form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core import gf2
from repro.core.errors import InvalidConnectionError

__all__ = ["Connection", "AffineConnection", "VertexType"]

# Proposition 1 classifies next-stage vertices by the multiset of arc types
# entering them: a vertex y is of type (f, g) when it is hit once by f and
# once by g, of type (f, f) when hit twice by f, of type (g, g) when hit
# twice by g.
VertexType = str  # one of "fg", "ff", "gg"


class Connection:
    """An interconnection scheme ``(f, g)`` between two adjacent stages.

    Parameters
    ----------
    f, g:
        Sequences of length ``M = 2^m`` with values in ``[0, M)``; ``f[x]``
        and ``g[x]`` are the two children of cell ``x`` in the next stage.
    validate:
        When true (default), check the MI-digraph degree condition: every
        next-stage cell has in-degree exactly 2 counting multiplicity.

    Raises
    ------
    InvalidConnectionError
        If the arrays have the wrong shape or values, or the degree
        condition fails.
    """

    __slots__ = ("_f", "_g", "_m")

    def __init__(self, f, g, *, validate: bool = True) -> None:
        f = np.asarray(f, dtype=np.int64)
        g = np.asarray(g, dtype=np.int64)
        if f.ndim != 1 or g.ndim != 1 or f.shape != g.shape:
            raise InvalidConnectionError(
                f"f and g must be equal-length 1-d arrays, got shapes "
                f"{f.shape} and {g.shape}"
            )
        size = f.shape[0]
        if size == 0 or size & (size - 1):
            raise InvalidConnectionError(
                f"stage size must be a power of two, got {size}"
            )
        self._m = size.bit_length() - 1
        self._f = f
        self._g = g
        if validate:
            self._validate()
        self._f.setflags(write=False)
        self._g.setflags(write=False)

    def _validate(self) -> None:
        size = self.size
        for name, arr in (("f", self._f), ("g", self._g)):
            if arr.size and (arr.min() < 0 or arr.max() >= size):
                raise InvalidConnectionError(
                    f"{name} has values outside [0, {size})"
                )
        indeg = np.bincount(self._f, minlength=size) + np.bincount(
            self._g, minlength=size
        )
        if not np.all(indeg == 2):
            bad = int(np.flatnonzero(indeg != 2)[0])
            raise InvalidConnectionError(
                f"next-stage cell {bad} has in-degree {int(indeg[bad])}, "
                f"expected 2"
            )

    # -- basic accessors ---------------------------------------------------

    @property
    def m(self) -> int:
        """Number of label digits (``n - 1`` for an n-stage network)."""
        return self._m

    @property
    def size(self) -> int:
        """Number of cells per stage, ``M = 2^m``."""
        return 1 << self._m

    @property
    def f(self) -> np.ndarray:
        """The first child function as a read-only ``int64`` array."""
        return self._f

    @property
    def g(self) -> np.ndarray:
        """The second child function as a read-only ``int64`` array."""
        return self._g

    def children(self, x: int) -> tuple[int, int]:
        """The two children ``(f(x), g(x))`` of cell ``x``."""
        return (int(self._f[x]), int(self._g[x]))

    def children_set(self, x: int) -> frozenset[int]:
        """``T+(x)`` — the set of children of ``x`` (size 1 on double links)."""
        return frozenset((int(self._f[x]), int(self._g[x])))

    def parents(self, y: int) -> tuple[int, ...]:
        """``T-(y)`` — the parents of next-stage cell ``y`` with multiplicity."""
        hits = []
        for arr in (self._f, self._g):
            hits.extend(int(x) for x in np.flatnonzero(arr == y))
        return tuple(sorted(hits))

    def parent_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Arrays ``(p0, p1)`` with the two parents of every next-stage cell.

        ``p0[y] <= p1[y]`` always; a cell fed by a double link has
        ``p0[y] == p1[y]``.
        """
        size = self.size
        p = np.empty((size, 2), dtype=np.int64)
        count = np.zeros(size, dtype=np.int64)
        for arr in (self._f, self._g):
            for x in range(size):
                y = arr[x]
                p[y, count[y]] = x
                count[y] += 1
        p.sort(axis=1)
        return p[:, 0].copy(), p[:, 1].copy()

    def arcs(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over arcs as ``(x, child, tag)`` with tag 0 = f, 1 = g."""
        for x in range(self.size):
            yield (x, int(self._f[x]), 0)
            yield (x, int(self._g[x]), 1)

    def arc_multiset(self) -> dict[tuple[int, int], int]:
        """Multiset of arcs ``(x, y) -> multiplicity`` ignoring the f/g split."""
        out: dict[tuple[int, int], int] = {}
        for x, y, _tag in self.arcs():
            out[(x, y)] = out.get((x, y), 0) + 1
        return out

    # -- structural queries --------------------------------------------------

    @property
    def has_double_links(self) -> bool:
        """True when some cell's two links land on the same child (Fig. 5)."""
        return bool(np.any(self._f == self._g))

    def vertex_types(self) -> list[VertexType]:
        """Proposition 1 type of each next-stage vertex: "fg", "ff" or "gg".

        A vertex hit twice by ``f`` has type ``"ff"``; twice by ``g`` type
        ``"gg"``; once by each, ``"fg"``.
        """
        size = self.size
        f_in = np.bincount(self._f, minlength=size)
        g_in = np.bincount(self._g, minlength=size)
        types: list[VertexType] = []
        for y in range(size):
            fi, gi = int(f_in[y]), int(g_in[y])
            if fi == 1 and gi == 1:
                types.append("fg")
            elif fi == 2 and gi == 0:
                types.append("ff")
            elif fi == 0 and gi == 2:
                types.append("gg")
            else:  # pragma: no cover - excluded by validation
                raise InvalidConnectionError(
                    f"vertex {y} has in-degree ({fi}, {gi})"
                )
        return types

    def swapped(self, cells) -> "Connection":
        """Return a copy with ``f`` and ``g`` exchanged on the given cells.

        The underlying digraph is unchanged — only the split of the
        adjacency relation into the pair ``(f, g)`` differs.  Useful for
        exploring split-dependent notions (independence, delta property).
        """
        mask = np.zeros(self.size, dtype=bool)
        mask[np.asarray(list(cells), dtype=np.int64)] = True
        f = np.where(mask, self._g, self._f)
        g = np.where(mask, self._f, self._g)
        return Connection(f, g, validate=False)

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Connection):
            return NotImplemented
        return (
            self._m == other._m
            and np.array_equal(self._f, other._f)
            and np.array_equal(self._g, other._g)
        )

    def __hash__(self) -> int:
        return hash((self._m, self._f.tobytes(), self._g.tobytes()))

    def __repr__(self) -> str:
        if self.size <= 8:
            return (
                f"Connection(f={self._f.tolist()}, g={self._g.tolist()})"
            )
        return f"Connection(m={self._m}, size={self.size})"

    def same_digraph(self, other: "Connection") -> bool:
        """Whether two connections define the same arc multiset.

        This ignores the (non-canonical) split of the adjacency into
        ``(f, g)``.
        """
        return (
            self._m == other._m
            and self.arc_multiset() == other.arc_multiset()
        )


@dataclass(frozen=True)
class AffineConnection:
    """Normal form of an independent connection (see module docstring).

    Attributes
    ----------
    cols:
        Basis images of the shared linear part ``B`` (see
        :mod:`repro.core.gf2`), length ``m``.
    c_f, c_g:
        The constants: ``f(x) = B(x) ⊕ c_f`` and ``g(x) = B(x) ⊕ c_g``.
    m:
        Number of label digits.
    """

    cols: tuple[int, ...]
    c_f: int
    c_g: int
    m: int

    def __post_init__(self) -> None:
        if len(self.cols) != self.m:
            raise InvalidConnectionError(
                f"expected {self.m} basis images, got {len(self.cols)}"
            )
        bound = 1 << self.m
        for v in (*self.cols, self.c_f, self.c_g):
            if not 0 <= v < bound:
                raise InvalidConnectionError(
                    f"value {v} outside Z_2^{self.m}"
                )

    @property
    def rank(self) -> int:
        """Rank of the linear part ``B``."""
        return gf2.rank(self.cols)

    @property
    def case(self) -> int:
        """Which case of Proposition 1 this connection falls in.

        1 — ``B`` invertible: ``f`` and ``g`` are bijections, every
        next-stage vertex has type ``(f, g)``.

        2 — ``rank(B) = m - 1`` and ``c_f ⊕ c_g ∉ Im(B)``: half the vertices
        have type ``(f, f)`` and half ``(g, g)``.

        Raises :class:`InvalidConnectionError` for parameters that do not
        yield a valid connection (in-degree 2 fails).
        """
        r = self.rank
        if r == self.m:
            return 1
        if r == self.m - 1 and not gf2.in_span(
            self.c_f ^ self.c_g, gf2.image_basis(self.cols)
        ):
            return 2
        raise InvalidConnectionError(
            f"affine parameters do not define a valid connection: "
            f"rank={r}, m={self.m}, "
            f"c_f^c_g in Im(B)="
            f"{gf2.in_span(self.c_f ^ self.c_g, gf2.image_basis(self.cols))}"
        )

    def beta(self, alpha: int) -> int:
        """The paper's β for a translation by ``alpha``: ``β = B(α)``.

        Satisfies ``f(x ⊕ α) = β ⊕ f(x)`` and ``g(x ⊕ α) = β ⊕ g(x)`` for
        every ``x`` — exactly the §3 definition of independence.
        """
        return gf2.apply_linear(self.cols, alpha)

    def to_connection(self, *, validate: bool = True) -> Connection:
        """Materialize the child tables ``f`` and ``g``."""
        table = gf2.apply_linear_table(self.cols, self.m)
        return Connection(
            table ^ np.int64(self.c_f),
            table ^ np.int64(self.c_g),
            validate=validate,
        )
