"""Label conventions of the paper (§3 and Figure 2, §4 and Figure 4).

Cells (nodes) of an ``n``-stage MI-digraph are labelled ``0 … 2^{n-1}-1``
"following the natural order of the drawing".  The paper writes the label of
a cell as the ``(n-1)``-tuple ``(x_{n-1}, …, x_1)`` in base 2 — note the
digit indices run from ``n-1`` down to **1** (not 0): cell labels live in
``Z_2^{n-1}`` while the extra digit ``x_0`` is reserved for *link* labels.

Links entering/leaving a stage are labelled ``0 … 2^n - 1`` with binary
representation ``(x_{n-1}, …, x_1, x_0)``: "the ``n-1`` first bits of a link
label are exactly the binary representation of the label of the incident
node" (§4), i.e. ``cell(link) = link >> 1`` and the two out-links of cell
``x`` are ``2x`` (upper, ``x_0 = 0``) and ``2x + 1`` (lower, ``x_0 = 1``).

This module converts between integers and the paper's tuple notation and
provides small helpers used throughout the library.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "all_labels",
    "bit",
    "cell_of_link",
    "format_label",
    "label_to_tuple",
    "links_of_cell",
    "num_cells",
    "tuple_to_label",
]


def num_cells(n_stages: int) -> int:
    """Number of cells per stage, ``M = 2^{n-1}``, for an n-stage network."""
    if n_stages < 1:
        raise ValueError(f"a network has at least one stage, got {n_stages}")
    return 1 << (n_stages - 1)


def bit(label: int, i: int) -> int:
    """Digit ``x_i`` of a label (bit ``i`` of the integer)."""
    return (label >> i) & 1


def label_to_tuple(label: int, width: int) -> tuple[int, ...]:
    """Integer label → paper tuple ``(x_{width}, …, x_1)``.

    ``width`` is the number of digits; for a cell of an n-stage network it is
    ``n - 1``, for a link it is ``n``.  The first tuple entry is the most
    significant digit, matching how the paper (and Figure 2) prints labels.

    >>> label_to_tuple(5, 3)
    (1, 0, 1)
    """
    if label < 0 or label >= 1 << width:
        raise ValueError(f"label {label} does not fit in {width} digits")
    return tuple((label >> i) & 1 for i in range(width - 1, -1, -1))


def tuple_to_label(digits: tuple[int, ...]) -> int:
    """Paper tuple ``(x_{w}, …, x_1)`` → integer label.

    >>> tuple_to_label((1, 0, 1))
    5
    """
    label = 0
    for d in digits:
        if d not in (0, 1):
            raise ValueError(f"binary digit expected, got {d}")
        label = (label << 1) | d
    return label


def format_label(label: int, width: int) -> str:
    """Render a label as the paper prints it, e.g. ``(1,0,1)``.

    >>> format_label(5, 3)
    '(1,0,1)'
    """
    return "(" + ",".join(str(d) for d in label_to_tuple(label, width)) + ")"


def all_labels(width: int) -> np.ndarray:
    """All labels of ``width`` digits as an ``int64`` array ``0 … 2^w - 1``."""
    return np.arange(1 << width, dtype=np.int64)


def cell_of_link(link: int) -> int:
    """The cell incident to a link: drop the last digit ``x_0`` (§4)."""
    return link >> 1


def links_of_cell(cell: int) -> tuple[int, int]:
    """The two links of a cell, upper (``x_0=0``) then lower (``x_0=1``)."""
    return (2 * cell, 2 * cell + 1)
