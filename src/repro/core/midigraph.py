"""The multistage interconnection digraph (MI-digraph) of §2.

    "A multistage interconnection digraph (MI-digraph) with n stages is a
    digraph whose nodes are partitioned into n ordered stages. [...] There
    are arcs only from nodes of the i-th stage to nodes of the (i+1)-th
    stage.  The nodes are of indegree 2 and outdegree 2 except the nodes
    from the first and the last stage.  And every stage has N/2 nodes where
    N = 2^n."

An :class:`MIDigraph` is stored as the tuple of its ``n - 1`` inter-stage
:class:`~repro.core.connection.Connection` objects — precisely the paper's
decomposition "such a decomposition of the adjacency relationship exists as
the outdegree of a node is always two".  Inputs and outputs of the physical
network are *not* nodes ("they do not play any role in the graph
isomorphism", §2).

Stages are numbered ``1 … n`` as in the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

from repro.core.connection import Connection
from repro.core.errors import InvalidNetworkError, StageIndexError

__all__ = ["MIDigraph"]


class MIDigraph:
    """An n-stage multistage interconnection digraph.

    Parameters
    ----------
    connections:
        The ``n - 1`` inter-stage connections, gap ``i`` linking stage ``i``
        to stage ``i + 1``.  All connections must act on the same stage
        size.  An empty sequence is rejected: the smallest interesting
        MI-digraph has 2 stages (``n = 1`` would be a single stage of half a
        cell — meaningless).
    """

    __slots__ = ("_connections", "_m")

    def __init__(self, connections: Sequence[Connection]) -> None:
        conns = tuple(connections)
        if not conns:
            raise InvalidNetworkError(
                "an MI-digraph needs at least one connection (two stages)"
            )
        m = conns[0].m
        for i, c in enumerate(conns):
            if not isinstance(c, Connection):
                raise InvalidNetworkError(
                    f"connection {i} is not a Connection: {type(c)!r}"
                )
            if c.m != m:
                raise InvalidNetworkError(
                    f"connection {i} acts on 2^{c.m} cells, expected 2^{m}"
                )
        self._connections = conns
        self._m = m

    # -- shape ---------------------------------------------------------------

    @property
    def n_stages(self) -> int:
        """Number of stages ``n``."""
        return len(self._connections) + 1

    @property
    def m(self) -> int:
        """Number of label digits per cell (``n - 1`` for classical sizes).

        Note: the paper ties stage size to stage count (``M = 2^{n-1}``);
        this class does not enforce that so sub-digraphs ``(G)_{i,j}``
        remain first-class MIDigraph values.  :meth:`is_square` tells
        whether the paper's size relation holds.
        """
        return self._m

    @property
    def size(self) -> int:
        """Number of cells per stage, ``M = 2^m``."""
        return 1 << self._m

    @property
    def n_inputs(self) -> int:
        """Number of network inputs ``N = 2 · M`` (two per first-stage cell)."""
        return 2 * self.size

    def is_square(self) -> bool:
        """Whether the paper's size relation ``M = 2^{n-1}`` holds.

        The characterization theorem and the P-properties are stated for
        square MI-digraphs; sub-digraphs extracted by :meth:`subrange` are
        generally not square.
        """
        return self.size == 1 << (self.n_stages - 1)

    @property
    def connections(self) -> tuple[Connection, ...]:
        """The inter-stage connections, gap ``i`` at index ``i - 1``."""
        return self._connections

    def connection(self, gap: int) -> Connection:
        """The connection between stage ``gap`` and stage ``gap + 1``.

        ``gap`` ranges over ``1 … n-1`` (paper numbering).
        """
        if not 1 <= gap <= len(self._connections):
            raise StageIndexError(
                f"gap {gap} outside 1..{len(self._connections)}"
            )
        return self._connections[gap - 1]

    def _check_stage(self, stage: int) -> None:
        if not 1 <= stage <= self.n_stages:
            raise StageIndexError(
                f"stage {stage} outside 1..{self.n_stages}"
            )

    # -- adjacency -------------------------------------------------------------

    def children(self, stage: int, x: int) -> tuple[int, int]:
        """Children ``T+(x)`` of cell ``x`` at ``stage`` (with multiplicity)."""
        self._check_stage(stage)
        if stage == self.n_stages:
            raise StageIndexError("last-stage cells have no children")
        return self._connections[stage - 1].children(x)

    def parents(self, stage: int, y: int) -> tuple[int, ...]:
        """Parents ``T-(y)`` of cell ``y`` at ``stage`` (with multiplicity)."""
        self._check_stage(stage)
        if stage == 1:
            raise StageIndexError("first-stage cells have no parents")
        return self._connections[stage - 2].parents(y)

    def nodes(self) -> Iterator[tuple[int, int]]:
        """All nodes as ``(stage, label)`` pairs, stage-major order."""
        for stage in range(1, self.n_stages + 1):
            for x in range(self.size):
                yield (stage, x)

    def arcs(self) -> Iterator[tuple[tuple[int, int], tuple[int, int]]]:
        """All arcs as ``((stage, x), (stage + 1, y))`` pairs."""
        for gap, conn in enumerate(self._connections, start=1):
            for x, y, _tag in conn.arcs():
                yield ((gap, x), (gap + 1, y))

    # -- derived digraphs -------------------------------------------------------

    def reverse(self) -> "MIDigraph":
        """The reverse MI-digraph ``G^{-1}`` (§3).

        "The digraph G^{-1} is obtained from G by changing the orientation
        of all the arcs [and] is associated with what is called the reverse
        network in the literature."

        Stage ``i`` of the reverse is stage ``n + 1 - i`` of ``G``.  The
        split of each reversed adjacency into ``(f, g)`` is **not** canonical
        — here the two parents are assigned in sorted order.  Use
        :func:`repro.core.reverse.reverse_connection` for the independence-
        preserving split of Proposition 1.
        """
        rev: list[Connection] = []
        for conn in reversed(self._connections):
            p0, p1 = conn.parent_arrays()
            rev.append(Connection(p0, p1, validate=True))
        return MIDigraph(rev)

    def subrange(self, i: int, j: int) -> "MIDigraph":
        """The sub-digraph ``(G)_{i,j}`` induced by stages ``i … j`` (§2).

        Requires ``1 <= i < j <= n`` (at least two stages — for single-stage
        "sub-digraphs" there is no connection to store; component counts for
        those are trivially ``M``).
        """
        self._check_stage(i)
        self._check_stage(j)
        if i >= j:
            raise StageIndexError(
                f"subrange needs i < j, got i={i}, j={j}"
            )
        return MIDigraph(self._connections[i - 1 : j - 1])

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a networkx ``MultiDiGraph``.

        Nodes are ``(stage, label)`` tuples carrying a ``stage`` attribute;
        parallel arcs (double links) are preserved.  Used by the test suite
        to cross-validate isomorphism decisions with networkx's VF2.
        """
        graph = nx.MultiDiGraph()
        for stage, x in self.nodes():
            graph.add_node((stage, x), stage=stage)
        for u, v in self.arcs():
            graph.add_edge(u, v)
        return graph

    # -- comparison ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MIDigraph):
            return NotImplemented
        return self._connections == other._connections

    def __hash__(self) -> int:
        return hash(self._connections)

    def same_digraph(self, other: "MIDigraph") -> bool:
        """Equality of the underlying digraphs, ignoring the f/g splits."""
        return self.n_stages == other.n_stages and all(
            a.same_digraph(b)
            for a, b in zip(self._connections, other._connections)
        )

    def __repr__(self) -> str:
        return (
            f"MIDigraph(n_stages={self.n_stages}, size={self.size}, "
            f"square={self.is_square()})"
        )

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def from_child_tables(
        cls,
        tables: Iterable[tuple[Sequence[int], Sequence[int]]],
    ) -> "MIDigraph":
        """Build from raw ``(f, g)`` table pairs, one per gap."""
        return cls([Connection(f, g) for f, g in tables])

    def relabel(self, mappings: Sequence[np.ndarray]) -> "MIDigraph":
        """Apply per-stage relabelings and return the relabeled MI-digraph.

        ``mappings[s]`` (``s = 0 … n-1``) sends old label → new label at
        stage ``s + 1`` and must be a permutation of ``0 … M-1``.  The
        resulting digraph is isomorphic to ``self`` by construction; this is
        the workhorse for generating isomorphic variants in tests and for
        applying canonical labelings.
        """
        if len(mappings) != self.n_stages:
            raise InvalidNetworkError(
                f"need {self.n_stages} stage mappings, got {len(mappings)}"
            )
        maps = [np.asarray(p, dtype=np.int64) for p in mappings]
        size = self.size
        for s, p in enumerate(maps):
            if p.shape != (size,) or not np.array_equal(
                np.sort(p), np.arange(size)
            ):
                raise InvalidNetworkError(
                    f"stage {s + 1} mapping is not a permutation of "
                    f"0..{size - 1}"
                )
        out: list[Connection] = []
        for gap, conn in enumerate(self._connections, start=1):
            src, dst = maps[gap - 1], maps[gap]
            inv_src = np.empty(size, dtype=np.int64)
            inv_src[src] = np.arange(size, dtype=np.int64)
            # new cell x' = src[x] has children dst[f[x]], dst[g[x]]
            out.append(
                Connection(
                    dst[conn.f[inv_src]], dst[conn.g[inv_src]], validate=False
                )
            )
        return MIDigraph(out)
