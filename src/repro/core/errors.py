"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class InvalidConnectionError(ReproError, ValueError):
    """A ``(f, g)`` pair does not describe a valid inter-stage connection.

    A valid connection between two stages of ``M = 2^{n-1}`` cells must have
    ``f`` and ``g`` defined on all of ``{0, …, M-1}`` with values in the same
    range, and the multiset ``{f(x)} ∪ {g(x)}`` must hit every cell of the
    next stage exactly twice (in-degree 2, §2 of the paper).
    """


class InvalidNetworkError(ReproError, ValueError):
    """A sequence of connections does not describe a valid MI-digraph."""


class StageIndexError(ReproError, IndexError):
    """A stage index is outside ``1..n`` (the paper numbers stages from 1)."""
