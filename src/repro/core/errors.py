"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class UnknownEntryError(ReproError, LookupError):
    """A registry lookup named an entry that was never registered.

    Carries the registry ``kind`` (e.g. ``"network"``), the unknown
    ``name`` and the sorted ``candidates`` tuple of registered names, so
    callers (and error messages) can offer the valid choices.
    """

    def __init__(self, kind: str, name: str, candidates) -> None:
        self.kind = kind
        self.name = name
        self.candidates = tuple(sorted(candidates))
        super().__init__(
            f"unknown {kind} {name!r}; choose from {list(self.candidates)}"
        )


class UnknownNetworkError(UnknownEntryError):
    """A network name is not in the network registry."""

    def __init__(self, name: str, candidates, *, kind: str = "network") -> None:
        super().__init__(kind, name, candidates)


class UnknownTrafficError(UnknownEntryError):
    """A traffic-pattern name is not in the traffic registry."""

    def __init__(self, name: str, candidates, *, kind: str = "traffic pattern") -> None:
        super().__init__(kind, name, candidates)


class InvalidConnectionError(ReproError, ValueError):
    """A ``(f, g)`` pair does not describe a valid inter-stage connection.

    A valid connection between two stages of ``M = 2^{n-1}`` cells must have
    ``f`` and ``g`` defined on all of ``{0, …, M-1}`` with values in the same
    range, and the multiset ``{f(x)} ∪ {g(x)}`` must hit every cell of the
    next stage exactly twice (in-degree 2, §2 of the paper).
    """


class InvalidNetworkError(ReproError, ValueError):
    """A sequence of connections does not describe a valid MI-digraph."""


class StageIndexError(ReproError, IndexError):
    """A stage index is outside ``1..n`` (the paper numbers stages from 1)."""
