"""Topological properties of MI-digraphs: Banyan and P(i, j) (§2).

Definitions implemented here, verbatim from the paper:

* **Banyan property** — "for any input and any output there exists a unique
  path connecting them".  Since the two inputs (outputs) attached to a
  first-stage (last-stage) cell reach exactly what the cell reaches, this is
  equivalent to: *the number of directed paths between every first-stage
  cell and every last-stage cell is exactly 1* — which is what
  :func:`is_banyan` checks via a path-counting dynamic program.

* **P(i, j)** — "the sub-digraph (G)_{i,j} has exactly ``2^{n-1-(j-i)}``
  connected components" (components of the undirected underlying graph).

* **P(1, \\*)** / **P(\\*, n)** — P(1, j) for every j / P(i, n) for every i.

The characterization theorem (§2, proved in the companion paper [12]):

    "All the MI-digraphs with n stages satisfying the Banyan property,
    P(*, n) and P(1, *) are isomorphic."

:func:`satisfies_characterization` bundles the three checks; equivalence to
the Baseline network reduces to it (see :mod:`repro.core.equivalence`).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import StageIndexError
from repro.core.midigraph import MIDigraph
from repro.core.unionfind import UnionFind

__all__ = [
    "component_labels",
    "component_stage_intersections",
    "count_components",
    "expected_components",
    "is_banyan",
    "p_one_star",
    "p_profile",
    "p_property",
    "p_star_n",
    "path_count_matrix",
    "satisfies_characterization",
]


def path_count_matrix(net: MIDigraph) -> np.ndarray:
    """Matrix ``P`` with ``P[u, w]`` = number of directed paths ``u → w``.

    ``u`` ranges over first-stage cells, ``w`` over last-stage cells.
    Dynamic program over stages: ``O(n · M²)`` additions, fully vectorized.
    Counts are exact (they are bounded by ``2^{n-1}``, far below int64).
    """
    size = net.size
    counts = np.eye(size, dtype=np.int64)  # counts[x, u] at current stage
    for conn in net.connections:
        nxt = np.zeros_like(counts)
        np.add.at(nxt, conn.f, counts)
        np.add.at(nxt, conn.g, counts)
        counts = nxt
    return counts.T.copy()


def is_banyan(net: MIDigraph) -> bool:
    """Whether the MI-digraph has the Banyan property (unique paths).

    Short-circuits on double links: every cell of an MI-digraph is reachable
    from stage 1 and reaches stage n (in/out-degree 2 everywhere), so a
    double link anywhere already creates two parallel input→output paths —
    this is the degeneracy of Figure 5.
    """
    if any(c.has_double_links for c in net.connections):
        return False
    return bool(np.all(path_count_matrix(net) == 1))


# ---------------------------------------------------------------------------
# Connected components and the P properties
# ---------------------------------------------------------------------------


def _union_gap(uf: UnionFind, net: MIDigraph, gap: int, off_a: int, off_b: int) -> None:
    """Union the endpoints of every arc of ``gap`` into ``uf``.

    ``off_a``/``off_b`` are the index offsets of the two stages inside the
    union-find universe.
    """
    conn = net.connections[gap - 1]
    for arr in (conn.f, conn.g):
        for x in range(net.size):
            uf.union(off_a + x, off_b + int(arr[x]))


def count_components(net: MIDigraph, i: int, j: int) -> int:
    """Number of connected components of the sub-digraph ``(G)_{i,j}``.

    Components are taken in the undirected underlying graph, per the paper's
    definition.  ``i == j`` is allowed and yields ``M`` (isolated nodes).
    """
    n = net.n_stages
    if not (1 <= i <= j <= n):
        raise StageIndexError(f"need 1 <= i <= j <= {n}, got ({i}, {j})")
    size = net.size
    uf = UnionFind((j - i + 1) * size)
    for gap in range(i, j):
        off = (gap - i) * size
        _union_gap(uf, net, gap, off, off + size)
    return uf.n_components


def expected_components(net: MIDigraph, i: int, j: int) -> int:
    """The component count required by P(i, j): ``2^{n-1-(j-i)}``.

    Only meaningful for square MI-digraphs (``M = 2^{n-1}``); expressed via
    ``M`` so that it degrades gracefully: ``M / 2^{j-i}`` (floored at 1 —
    beyond ``j - i = m`` gaps a conforming digraph is fully connected).
    """
    return max(net.size >> (j - i), 1)


def p_property(net: MIDigraph, i: int, j: int) -> bool:
    """Whether ``(G)_{i,j}`` satisfies P(i, j)."""
    return count_components(net, i, j) == expected_components(net, i, j)


def p_one_star(net: MIDigraph) -> bool:
    """Whether the MI-digraph satisfies P(1, *) — P(1, j) for all j.

    Single incremental union-find sweep over prefixes, ``O(n · M · α)``.
    """
    size = net.size
    n = net.n_stages
    uf = UnionFind(size)  # stage 1
    if uf.n_components != expected_components(net, 1, 1):  # pragma: no cover
        return False
    for j in range(2, n + 1):
        uf.add(size)
        _union_gap(uf, net, j - 1, (j - 2) * size, (j - 1) * size)
        if uf.n_components != expected_components(net, 1, j):
            return False
    return True


def p_star_n(net: MIDigraph) -> bool:
    """Whether the MI-digraph satisfies P(*, n) — P(i, n) for all i.

    Implemented as :func:`p_one_star` of the reverse digraph (the component
    structure of ``(G)_{i,n}`` equals that of ``(G^{-1})_{1,n+1-i}``).
    """
    return p_one_star(net.reverse())


def p_profile(net: MIDigraph) -> dict[tuple[int, int], int]:
    """Component counts of every ``(G)_{i,j}``, ``1 ≤ i ≤ j ≤ n``.

    This is the full invariant family from which all P properties read off;
    it is preserved by MI-digraph isomorphism, which makes it a useful
    fingerprint for *distinguishing* non-equivalent networks (used by the
    counterexample experiments).  ``O(n² · M · α)``.
    """
    n = net.n_stages
    out: dict[tuple[int, int], int] = {}
    size = net.size
    for i in range(1, n + 1):
        uf = UnionFind(size)
        out[(i, i)] = uf.n_components
        for j in range(i + 1, n + 1):
            uf.add(size)
            _union_gap(uf, net, j - 1, (j - 1 - i) * size, (j - i) * size)
            out[(i, j)] = uf.n_components
    return out


def component_labels(net: MIDigraph, i: int, j: int) -> np.ndarray:
    """Component id of every node of ``(G)_{i,j}``.

    Returns an array of shape ``(j - i + 1, M)``; entry ``[s, x]`` is the
    component id (0-based, in order of first appearance stage-major) of cell
    ``x`` at stage ``i + s``.  The ids themselves are arbitrary but
    consistent within one call — suitable for building invariant colors for
    the isomorphism search.
    """
    n = net.n_stages
    if not (1 <= i <= j <= n):
        raise StageIndexError(f"need 1 <= i <= j <= {n}, got ({i}, {j})")
    size = net.size
    uf = UnionFind((j - i + 1) * size)
    for gap in range(i, j):
        off = (gap - i) * size
        _union_gap(uf, net, gap, off, off + size)
    ids: dict[int, int] = {}
    out = np.empty((j - i + 1, size), dtype=np.int64)
    for s in range(j - i + 1):
        for x in range(size):
            root = uf.find(s * size + x)
            out[s, x] = ids.setdefault(root, len(ids))
    return out


def component_stage_intersections(
    net: MIDigraph, j: int
) -> list[list[int]]:
    """Per-stage sizes of each component of the suffix ``(G)_{j,n}``.

    Reproduces the bookkeeping of the Lemma 2 proof (Figure 3): for a
    conforming network, every component ``C`` of ``(G)_{j,n}`` intersects
    each stage ``V_i`` (``j ≤ i ≤ n``) in exactly ``2^{n-j}`` nodes (the
    paper proves ``|C ∩ V_i| = 2^{n-1-(j-1)}``; with ``M = 2^{n-1}`` cells
    per stage that is ``M / 2^{j-1}``).

    Returns one list per component: the sizes of its intersection with
    stages ``j, j+1, …, n``.  Components are ordered by their smallest
    member at stage ``j``.
    """
    n = net.n_stages
    if j == n:
        return [[1] for _ in range(net.size)]
    labels = component_labels(net, j, n)
    n_comp = int(labels.max()) + 1
    sizes = [
        [int(np.count_nonzero(labels[s] == c)) for s in range(labels.shape[0])]
        for c in range(n_comp)
    ]
    return sizes


def satisfies_characterization(net: MIDigraph) -> bool:
    """The hypothesis bundle of the §2 theorem: Banyan ∧ P(1, *) ∧ P(*, n).

    By the theorem, every square MI-digraph satisfying this is isomorphic to
    the Baseline MI-digraph — see
    :func:`repro.core.equivalence.is_baseline_equivalent`.
    """
    return p_one_star(net) and p_star_n(net) and is_banyan(net)
