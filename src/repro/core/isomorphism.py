"""Stage-respecting isomorphism of MI-digraphs.

The paper's notion of topological equivalence is digraph isomorphism (§2).
For MI-digraphs the stage partition is forced by the arc directions (arcs
only run from stage i to stage i+1 and every node has out-degree 2 except at
the last stage), so an isomorphism necessarily maps stage i onto stage i —
we exploit that and search for per-stage bijections directly.

Algorithm
---------
1. Cheap invariants: stage count, stage size, and the full component
   profile :func:`repro.core.properties.p_profile` must agree.
2. 1-dimensional Weisfeiler–Leman color refinement on the layered
   multigraph (signatures combine the node's color with the color multisets
   of its children and parents), run jointly on both graphs; class size
   histograms must match at every round.
3. VF2-style backtracking in BFS order over the underlying undirected
   graph, with candidates generated from the image of each node's BFS
   anchor (so candidate sets have size ≤ 2 after the root) and symmetric
   multiset consistency checks that handle parallel arcs (double links).

The search returns per-stage label mappings which
:func:`repro.core.equivalence.verify_isomorphism` re-checks arc by arc —
tests additionally cross-validate against networkx's VF2 on small sizes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.midigraph import MIDigraph
from repro.core.properties import p_profile

__all__ = [
    "automorphisms",
    "count_automorphisms",
    "find_isomorphism",
    "find_layered_isomorphism",
    "is_isomorphic",
]


class _Layered:
    """Flattened adjacency of a layered digraph for the search.

    ``child_lists[s][x]`` holds the children (next-stage cell labels, with
    multiplicity) of cell ``x`` at stage ``s + 1``.  Built either from an
    :class:`MIDigraph` (2 children per cell) or from arbitrary child lists
    (the radix-k extension passes ``k`` children per cell).
    """

    def __init__(
        self, child_lists: list[list[tuple[int, ...]]], size: int
    ) -> None:
        self.n = len(child_lists) + 1
        self.size = size
        n_nodes = self.n * size
        self.children: list[tuple[int, ...]] = [() for _ in range(n_nodes)]
        self.parents: list[tuple[int, ...]] = [() for _ in range(n_nodes)]
        for gap, stage_children in enumerate(child_lists, start=1):
            off_a = (gap - 1) * size
            off_b = gap * size
            pars: list[list[int]] = [[] for _ in range(size)]
            for x in range(size):
                kids = stage_children[x]
                self.children[off_a + x] = tuple(off_b + c for c in kids)
                for c in kids:
                    pars[c].append(off_a + x)
            for x in range(size):
                self.parents[off_b + x] = tuple(pars[x])

    @classmethod
    def from_midigraph(cls, net: MIDigraph) -> "_Layered":
        child_lists = [
            [
                (int(conn.f[x]), int(conn.g[x]))
                for x in range(net.size)
            ]
            for conn in net.connections
        ]
        return cls(child_lists, net.size)

    def stage_of(self, node: int) -> int:
        return node // self.size + 1

    def component_tables(self) -> list[tuple[list[int], list[int]]]:
        """Component ids of every suffix (G)_{j,n} and prefix (G)_{1,j}.

        Returns one ``(comp_id, comp_size)`` pair per constraint:
        ``comp_id[node]`` is the node's component (or -1 when the node is
        outside the stage range), ``comp_size[c]`` the component's node
        count.  An isomorphism must map components of each sub-digraph onto
        equal-sized components of the peer's — binding these during the
        search encodes the paper's P-structure as hard pruning.
        """
        from repro.core.unionfind import UnionFind

        n, size = self.n, self.size
        n_nodes = n * size
        tables: list[tuple[list[int], list[int]]] = []

        def build(lo_stage: int, hi_stage: int) -> None:
            uf = UnionFind(n_nodes)
            for v in range((lo_stage - 1) * size, hi_stage * size):
                if self.stage_of(v) < hi_stage:
                    for c in self.children[v]:
                        uf.union(v, c)
            comp_id = [-1] * n_nodes
            sizes: list[int] = []
            ids: dict[int, int] = {}
            for v in range((lo_stage - 1) * size, hi_stage * size):
                root = uf.find(v)
                cid = ids.setdefault(root, len(ids))
                if cid == len(sizes):
                    sizes.append(0)
                comp_id[v] = cid
                sizes[cid] += 1
            tables.append((comp_id, sizes))

        for j in range(1, n):  # suffixes (G)_{j,n}; j = 1 = whole graph
            build(j, n)
        for j in range(2, n):  # prefixes (G)_{1,j}
            build(1, j)
        return tables


def _refine_colors(a: _Layered, b: _Layered) -> tuple[list[int], list[int]] | None:
    """Joint WL color refinement; ``None`` when histograms diverge."""
    col_a = [a.stage_of(v) for v in range(a.n * a.size)]
    col_b = [b.stage_of(v) for v in range(b.n * b.size)]
    for _ in range(a.n * a.size):
        sig_ids: dict[tuple, int] = {}

        def signature(lay: _Layered, col: list[int], v: int) -> tuple:
            return (
                col[v],
                tuple(sorted(col[c] for c in lay.children[v])),
                tuple(sorted(col[p] for p in lay.parents[v])),
            )

        new_a = [sig_ids.setdefault(signature(a, col_a, v), len(sig_ids))
                 for v in range(len(col_a))]
        new_b = [sig_ids.setdefault(signature(b, col_b, v), len(sig_ids))
                 for v in range(len(col_b))]
        hist_a = np.bincount(new_a, minlength=len(sig_ids))
        hist_b = np.bincount(new_b, minlength=len(sig_ids))
        if not np.array_equal(hist_a, hist_b):
            return None
        if len(set(new_a)) == len(set(col_a)):
            return new_a, new_b
        col_a, col_b = new_a, new_b
    return col_a, col_b


def _bfs_order(lay: _Layered) -> tuple[list[int], list[int]]:
    """BFS order over the underlying graph and each node's anchor.

    The anchor of a node is the already-ordered neighbor it was discovered
    from (-1 for component roots); it is used to generate candidate images.
    """
    n_nodes = lay.n * lay.size
    seen = [False] * n_nodes
    order: list[int] = []
    anchor: list[int] = [-1] * n_nodes
    for root in range(n_nodes):
        if seen[root]:
            continue
        seen[root] = True
        queue = deque([root])
        while queue:
            v = queue.popleft()
            order.append(v)
            for u in (*lay.children[v], *lay.parents[v]):
                if not seen[u]:
                    seen[u] = True
                    anchor[u] = v
                    queue.append(u)
    return order, anchor


def _multiset(values) -> dict[int, int]:
    out: dict[int, int] = {}
    for v in values:
        out[v] = out.get(v, 0) + 1
    return out


def _consistent(
    a: _Layered,
    b: _Layered,
    fwd: list[int],
    bwd: list[int],
    v: int,
    w: int,
) -> bool:
    """Symmetric local consistency of the tentative pair ``v ↦ w``."""
    for nbrs_a, nbrs_b in (
        (a.children[v], b.children[w]),
        (a.parents[v], b.parents[w]),
    ):
        mapped = _multiset(fwd[c] for c in nbrs_a if fwd[c] != -1)
        used = _multiset(d for d in nbrs_b if bwd[d] != -1)
        if mapped != used:
            return False
    return True


def find_isomorphism(
    g: MIDigraph, h: MIDigraph
) -> list[np.ndarray] | None:
    """Find a stage-respecting isomorphism ``g → h``.

    Returns per-stage mappings: a list of ``n`` permutation arrays, entry
    ``s`` sending stage-``s+1`` labels of ``g`` to labels of ``h``; or
    ``None`` when the digraphs are not isomorphic.

    The mapping can be verified independently with
    :func:`repro.core.equivalence.verify_isomorphism` (and is, in the test
    suite, against networkx VF2).
    """
    if g.n_stages != h.n_stages or g.size != h.size:
        return None
    if p_profile(g) != p_profile(h):
        return None
    return _search(_Layered.from_midigraph(g), _Layered.from_midigraph(h))


def find_layered_isomorphism(
    children_g: list[list[tuple[int, ...]]],
    children_h: list[list[tuple[int, ...]]],
    size: int,
) -> list[np.ndarray] | None:
    """Stage-respecting isomorphism between two generic layered digraphs.

    ``children_x[gap][cell]`` lists the children of ``cell`` (next-stage
    labels, with multiplicity).  Both graphs must have the same number of
    gaps and ``size`` cells per stage.  Used by the radix-k extension
    (:mod:`repro.radix`), where cells have ``k`` children instead of 2.
    """
    if len(children_g) != len(children_h):
        return None
    return _search(
        _Layered(children_g, size), _Layered(children_h, size)
    )


def _search(
    lay_g: _Layered, lay_h: _Layered
) -> list[np.ndarray] | None:
    """First solution of the backtracking search, or ``None``."""
    return next(_iter_solutions(lay_g, lay_h), None)


def _iter_solutions(lay_g: _Layered, lay_h: _Layered):
    """Generate *every* stage-respecting isomorphism ``lay_g → lay_h``.

    The DFS continues past complete assignments, so iterating exhausts the
    full set — used by :func:`automorphisms` with ``lay_h = lay_g``.
    """
    refined = _refine_colors(lay_g, lay_h)
    if refined is None:
        return
    col_g, col_h = refined

    # Group h's nodes by color for root candidate generation.
    by_color: dict[int, list[int]] = {}
    for w, c in enumerate(col_h):
        by_color.setdefault(c, []).append(w)

    order, anchor = _bfs_order(lay_g)
    n_nodes = len(order)
    fwd = [-1] * n_nodes  # g node -> h node
    bwd = [-1] * n_nodes  # h node -> g node

    # Component-consistency machinery: every suffix/prefix sub-digraph's
    # components must map onto equal-sized components (the P-structure of
    # §2, turned into search pruning).  For each constraint we bind g-
    # components to h-components on first contact and reject mismatches.
    comps_g = lay_g.component_tables()
    comps_h = lay_h.component_tables()
    if [sorted(sz) for _ids, sz in comps_g] != [
        sorted(sz) for _ids, sz in comps_h
    ]:
        return
    bind_fwd: list[dict[int, int]] = [{} for _ in comps_g]
    bind_bwd: list[dict[int, int]] = [{} for _ in comps_g]

    def bind_components(v: int, w: int) -> list[tuple[int, int]] | None:
        """Bind v's components to w's; None on conflict, else undo list."""
        added: list[tuple[int, int]] = []
        for t, (ids_g, sizes_g) in enumerate(comps_g):
            cg = ids_g[v]
            if cg < 0:
                continue
            ids_h, sizes_h = comps_h[t]
            ch = ids_h[w]
            bound = bind_fwd[t].get(cg)
            if bound is not None:
                if bound != ch:
                    break
                continue
            if bind_bwd[t].get(ch) is not None:
                break
            if sizes_g[cg] != sizes_h[ch]:
                break
            bind_fwd[t][cg] = ch
            bind_bwd[t][ch] = cg
            added.append((t, cg))
        else:
            return added
        # conflict: roll back what this call added
        for t, cg in added:
            ch = bind_fwd[t].pop(cg)
            del bind_bwd[t][ch]
        return None

    def unbind_components(added: list[tuple[int, int]]) -> None:
        for t, cg in added:
            ch = bind_fwd[t].pop(cg)
            del bind_bwd[t][ch]

    def candidates(v: int):
        anc = anchor[v]
        if anc == -1:
            return iter(by_color.get(col_g[v], ()))
        w_anc = fwd[anc]
        # v was discovered from anc: v is a child or parent of anc.
        if v in lay_g.children[anc]:
            pool = lay_h.children[w_anc]
        else:
            pool = lay_h.parents[w_anc]
        # dedupe while preserving order (double links repeat entries)
        seen: set[int] = set()
        out = []
        for w in pool:
            if w not in seen:
                seen.add(w)
                out.append(w)
        return iter(out)

    def extract() -> list[np.ndarray]:
        size = lay_g.size
        out: list[np.ndarray] = []
        for s in range(lay_g.n):
            stage_map = np.empty(size, dtype=np.int64)
            for x in range(size):
                stage_map[x] = fwd[s * size + x] - s * size
            out.append(stage_map)
        return out

    iters: list = [None] * n_nodes
    binds: list[list[tuple[int, int]] | None] = [None] * n_nodes
    pos = 0
    while True:
        if pos == n_nodes:
            yield extract()
            # backtrack past the last assignment and keep searching
            pos -= 1
            if pos < 0:
                return
            u = order[pos]
            bwd[fwd[u]] = -1
            fwd[u] = -1
            unbind_components(binds[pos])
            binds[pos] = None
            continue
        v = order[pos]
        if iters[pos] is None:
            iters[pos] = candidates(v)
        placed = False
        for w in iters[pos]:
            if bwd[w] != -1 or col_g[v] != col_h[w]:
                continue
            if not _consistent(lay_g, lay_h, fwd, bwd, v, w):
                continue
            added = bind_components(v, w)
            if added is None:
                continue
            binds[pos] = added
            fwd[v] = w
            bwd[w] = v
            pos += 1
            placed = True
            break
        if not placed:
            iters[pos] = None
            pos -= 1
            if pos < 0:
                return
            u = order[pos]
            bwd[fwd[u]] = -1
            fwd[u] = -1
            unbind_components(binds[pos])
            binds[pos] = None


def is_isomorphic(g: MIDigraph, h: MIDigraph) -> bool:
    """Whether two MI-digraphs are topologically equivalent (§2)."""
    return find_isomorphism(g, h) is not None


def automorphisms(net: MIDigraph, *, limit: int | None = None):
    """Generate the stage-respecting automorphisms of a network.

    Yields per-stage mapping lists (same format as
    :func:`find_isomorphism`); the identity is always among them.  With
    ``limit``, stop after that many.

    Every network built from independent connections carries the
    *translation* automorphisms ``x ↦ x ⊕ a`` (propagated through the
    stages by the shared linear parts), so Theorem-3 networks have at
    least ``2^{n-1}`` automorphisms; the exact group order is an
    isomorphism invariant, which the tests exploit.
    """
    lay = _Layered.from_midigraph(net)
    count = 0
    for solution in _iter_solutions(lay, _Layered.from_midigraph(net)):
        yield solution
        count += 1
        if limit is not None and count >= limit:
            return


def count_automorphisms(net: MIDigraph, *, limit: int = 1_000_000) -> int:
    """Order of the stage-respecting automorphism group (capped).

    Counts by exhaustive enumeration; raises ``RuntimeError`` when the
    group order exceeds ``limit`` (a guard against runaway enumeration on
    very symmetric networks).
    """
    count = 0
    for _ in automorphisms(net):
        count += 1
        if count > limit:
            raise RuntimeError(
                f"more than {limit} automorphisms; raise the limit"
            )
    return count
