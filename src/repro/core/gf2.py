"""Linear algebra over GF(2) on bit-packed integer vectors.

The paper works in the group ``(Z_2^{n-1}, ⊕)`` of cell labels (§3) and its
proofs manipulate bases, translated sets and subspaces of that group
(Proposition 1, Lemma 2).  This module provides that machinery.

Representation
--------------
A vector of ``Z_2^m`` is a Python ``int`` in ``[0, 2^m)``; bit ``i`` of the
integer is the coefficient of the basis vector ``e_i``.  Vector addition is
``^`` (xor).  A linear map ``B : Z_2^m → Z_2^k`` is represented by the tuple
of its basis images ``cols[i] = B(e_i)`` (each an int in ``[0, 2^k)``), so
``B(x) = ⊕_{i : bit i of x set} cols[i]``.

This representation is exact, hashable, and fast for the dimensions used by
multistage interconnection networks (``m = n - 1 ≤ ~20``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "apply_linear",
    "apply_linear_table",
    "complete_basis",
    "compose",
    "echelon_basis",
    "identity_cols",
    "image_basis",
    "in_span",
    "invert",
    "kernel_basis",
    "random_full_rank_cols",
    "random_invertible_cols",
    "random_vector",
    "rank",
    "reduce_vector",
    "span",
]


def echelon_basis(vectors: Iterable[int]) -> list[int]:
    """Return a row-echelon basis of the span of ``vectors``.

    The returned list contains reduced vectors with strictly decreasing
    leading-bit positions; its length is the rank of the input family.
    """
    basis: list[int] = []  # kept sorted by decreasing leading bit
    for v in vectors:
        v = reduce_vector(v, basis)
        if v:
            basis.append(v)
            basis.sort(reverse=True)
    return basis


def reduce_vector(v: int, basis: Sequence[int]) -> int:
    """Reduce ``v`` modulo the span of an echelon ``basis``.

    Returns 0 iff ``v`` lies in the span.  ``basis`` must consist of vectors
    with pairwise distinct leading bits (as produced by
    :func:`echelon_basis`); the order of ``basis`` does not matter.
    """
    for b in basis:
        if v ^ b < v:  # b's leading bit is set in v
            v ^= b
    return v


def in_span(v: int, basis: Sequence[int]) -> bool:
    """Whether ``v`` lies in the span of an echelon ``basis``."""
    return reduce_vector(v, basis) == 0


def rank(vectors: Iterable[int]) -> int:
    """Rank of a family of GF(2) vectors."""
    return len(echelon_basis(vectors))


def span(basis: Sequence[int]) -> list[int]:
    """Enumerate all ``2^rank`` vectors of the span of ``basis``.

    The result is ordered so that element ``j`` is the combination of basis
    vectors selected by the bits of ``j`` — convenient for indexing cosets.
    """
    out = [0]
    for b in basis:
        out += [v ^ b for v in out]
    return out


def complete_basis(independent: Sequence[int], dim: int) -> list[int]:
    """Extend an independent family to a basis of ``Z_2^dim``.

    The returned list starts with the vectors of ``independent`` (in order)
    followed by unit vectors completing them to a basis.  Raises
    ``ValueError`` if the input family is dependent.

    This is the step "let α_2, …, α_{n-1} be a basis of Z_2^{n-1}" in the
    proof of Proposition 1.
    """
    ech = echelon_basis(independent)
    if len(ech) != len(independent):
        raise ValueError("input family is linearly dependent")
    out = list(independent)
    for i in range(dim):
        e = 1 << i
        if reduce_vector(e, ech):
            ech = echelon_basis([*ech, e])
            out.append(e)
    if len(out) != dim:
        raise ValueError(
            f"could not complete to a basis of dimension {dim}; "
            f"input vectors exceed the ambient space"
        )
    return out


# ---------------------------------------------------------------------------
# Linear maps as tuples of basis images
# ---------------------------------------------------------------------------


def identity_cols(dim: int) -> tuple[int, ...]:
    """Basis images of the identity map on ``Z_2^dim``."""
    return tuple(1 << i for i in range(dim))


def apply_linear(cols: Sequence[int], x: int) -> int:
    """Apply the linear map with basis images ``cols`` to a single vector."""
    y = 0
    i = 0
    while x:
        if x & 1:
            y ^= cols[i]
        x >>= 1
        i += 1
    return y


def apply_linear_table(cols: Sequence[int], dim: int) -> np.ndarray:
    """Tabulate ``B(x)`` for every ``x`` in ``[0, 2^dim)``.

    Returns an ``int64`` array ``t`` with ``t[x] = B(x)``, built by the
    doubling recurrence ``t[x ⊕ e_i] = t[x] ⊕ cols[i]`` in ``O(2^dim)``.
    """
    if len(cols) < dim:
        raise ValueError(f"need at least {dim} basis images, got {len(cols)}")
    table = np.zeros(1 << dim, dtype=np.int64)
    size = 1
    for i in range(dim):
        table[size : 2 * size] = table[:size] ^ np.int64(cols[i])
        size *= 2
    return table


def compose(outer: Sequence[int], inner: Sequence[int]) -> tuple[int, ...]:
    """Basis images of ``outer ∘ inner``."""
    return tuple(apply_linear(outer, c) for c in inner)


def image_basis(cols: Sequence[int]) -> list[int]:
    """Echelon basis of the image (column space) of a linear map."""
    return echelon_basis(cols)


def kernel_basis(cols: Sequence[int]) -> list[int]:
    """Basis of the kernel of the linear map with basis images ``cols``.

    Standard column elimination with combination tracking: each input basis
    vector carries the combination of inputs that produced it; columns that
    reduce to zero yield kernel vectors.
    """
    pivots: dict[int, tuple[int, int]] = {}  # leading bit -> (value, combo)
    kernel: list[int] = []
    for i, c in enumerate(cols):
        v = c
        combo = 1 << i
        while v:
            lead = v.bit_length() - 1
            if lead in pivots:
                pv, pc = pivots[lead]
                v ^= pv
                combo ^= pc
            else:
                pivots[lead] = (v, combo)
                break
        if v == 0:
            kernel.append(combo)
    return kernel


def invert(cols: Sequence[int], dim: int) -> tuple[int, ...]:
    """Basis images of the inverse of an invertible map on ``Z_2^dim``.

    Raises ``ValueError`` when the map is singular.  Gauss–Jordan on the
    augmented system, all bit-packed.
    """
    if len(cols) != dim:
        raise ValueError("square map required")
    # rows of the augmented matrix: (value, tracking) where tracking records
    # the combination of original columns giving `value`.
    rows = [(cols[i], 1 << i) for i in range(dim)]
    inv = [0] * dim
    used: list[tuple[int, int]] = []
    for value, track in rows:
        v, t = value, track
        for pv, pt in used:
            if v ^ pv < v:
                v ^= pv
                t ^= pt
        if v == 0:
            raise ValueError("map is singular")
        used.append((v, t))
        used.sort(reverse=True)
    # Back-substitute: express each unit vector e_j in terms of columns.
    for j in range(dim):
        v, t = 1 << j, 0
        for pv, pt in used:
            if v ^ pv < v:
                v ^= pv
                t ^= pt
        if v != 0:
            raise ValueError("map is singular")
        inv[j] = t
    return tuple(inv)


# ---------------------------------------------------------------------------
# Random generation (seeded, for tests and randomized experiments)
# ---------------------------------------------------------------------------


def random_vector(rng: np.random.Generator, dim: int) -> int:
    """A uniform random vector of ``Z_2^dim``."""
    if dim == 0:
        return 0
    return int(rng.integers(0, 1 << dim))


def random_invertible_cols(
    rng: np.random.Generator, dim: int
) -> tuple[int, ...]:
    """Basis images of a uniform random invertible map on ``Z_2^dim``.

    Built column by column: each new column is drawn uniformly outside the
    span of the previous ones, which yields the uniform distribution on
    ``GL(dim, 2)``.
    """
    cols: list[int] = []
    ech: list[int] = []
    for _ in range(dim):
        while True:
            v = random_vector(rng, dim)
            if reduce_vector(v, ech):
                break
        cols.append(v)
        ech = echelon_basis(ech + [v])
    return tuple(cols)


def random_full_rank_cols(
    rng: np.random.Generator, dim_in: int, dim_out: int
) -> tuple[int, ...]:
    """Basis images of a random surjective map ``Z_2^dim_in → Z_2^dim_out``.

    Requires ``dim_in >= dim_out``.  The map has full rank ``dim_out``.
    """
    if dim_in < dim_out:
        raise ValueError("dim_in must be at least dim_out for surjectivity")
    # Start from an invertible map on dim_out inputs, then append random
    # columns (which cannot lower the rank), then shuffle input coordinates
    # through a random invertible change of basis.
    base = list(random_invertible_cols(rng, dim_out))
    base += [random_vector(rng, dim_out) for _ in range(dim_in - dim_out)]
    change = random_invertible_cols(rng, dim_in)
    return compose(base, change)
