"""Disjoint-set union (union-find) used by the P(i, j) property checks.

The paper notes that its characterization "is very easy to check using a
breadth first search algorithm to compute the number of connected
components"; we use union-find instead of BFS, which has the same role
(counting components of the undirected underlying graph) with better
incremental behaviour: the ``P(1, *)`` and ``P(*, n)`` sweeps add one stage
at a time and reuse the structure.
"""

from __future__ import annotations

__all__ = ["UnionFind"]


class UnionFind:
    """Array-based DSU with path halving and union by size."""

    __slots__ = ("parent", "size_", "n_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("number of elements must be non-negative")
        self.parent = list(range(n))
        self.size_ = [1] * n
        self.n_components = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s component (with path halving)."""
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``.

        Returns True when a merge happened (the elements were in different
        components).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size_[ra] < self.size_[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size_[ra] += self.size_[rb]
        self.n_components -= 1
        return True

    def add(self, count: int = 1) -> None:
        """Append ``count`` fresh singleton elements."""
        start = len(self.parent)
        self.parent.extend(range(start, start + count))
        self.size_.extend([1] * count)
        self.n_components += count

    def groups(self) -> dict[int, list[int]]:
        """Map representative → sorted members, for component inspection."""
        out: dict[int, list[int]] = {}
        for x in range(len(self.parent)):
            out.setdefault(self.find(x), []).append(x)
        return out
