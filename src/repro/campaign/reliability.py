"""Reliability sweeps: availability curves, saturation, MTTF, resilience.

The paper settles which networks are *the same*; this module measures
which augmented networks are *better* — what an extra stage of switches
buys in surviving terminal pairs as components fail.  A
:class:`ReliabilitySweepSpec` expands a (network × fault count) grid
from 0 faults to saturation and runs it through the ordinary campaign
machinery (:func:`repro.campaign.runner.run_campaign` — supervised,
resumable, chaos-hardened); the aggregates below then reduce the stored
records to the classical reliability comparison:

* **availability curve** — mean/min/max terminal availability
  (:func:`repro.sim.faults.fault_connectivity`) and observed unroutable
  fraction vs fault count, per topology;
* **saturation point** — the first fault count whose mean availability
  falls below a threshold;
* **MTTF-style faults-to-disconnect** — under the sequential-failure
  model (:meth:`repro.sim.faults.FaultSet.kill_order`), the expected
  number of killed components at which the first terminal pair
  disconnects, averaged over fault draws;
* **resilience per switch** — availability gain over the baseline
  topology normalised by the extra cells spent, the hardware-efficiency
  number of the fault-tolerant-MIN literature.

Apples-to-apples discipline: sweeps set
:attr:`~repro.campaign.spec.CampaignSpec.nested_faults`, so every
compared topology sees the *identical* structural fault draws at every
count, and a draw at count ``k`` is a prefix of the same draw at
``k + 1`` — availability is monotone non-increasing in the count by
construction, per draw and hence in the mean.

Like :mod:`repro.campaign.aggregate`, everything here is a pure,
order-independent function of the stored records: reports are
byte-identical across supervised/unsupervised runs, interruptions and
``--resume``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.campaign.aggregate import _mean, load_records
from repro.campaign.spec import CampaignSpec, _grid_networks
from repro.core.errors import ReproError
from repro.obs import trace as obs
from repro.obs.metrics import metrics
from repro.obs.schema import COUNTER_AVAILABILITY_EVALS, SPAN_RELIABILITY
from repro.sim.faults import FaultSet, fault_connectivity
from repro.spec.scenario import NetworkSpec, canonical_json

__all__ = [
    "ReliabilitySweepSpec",
    "dumps_reliability",
    "dumps_sweep",
    "loads_sweep",
    "reliability_from_store",
    "reliability_report",
    "reliability_summary_table",
    "reliability_table",
]

_SWEEP_FORMAT = "repro-reliability-sweep"
_SWEEP_VERSION = 1
_RELIABILITY_FORMAT = "repro-campaign-reliability"
_RELIABILITY_VERSION = 1


@dataclass(frozen=True)
class ReliabilitySweepSpec:
    """A declarative fault-saturation sweep (``repro-reliability-sweep``).

    A thin layer over :class:`~repro.campaign.spec.CampaignSpec`: one
    stage order, one traffic point, and a fault-count axis running from
    0 to saturation, with ``draws`` seeded fault samples per count.  The
    first network is the resilience baseline.

    Attributes
    ----------
    networks:
        Topology entries (same forms as the campaign ``topologies``
        axis).  The first entry is the baseline that resilience-per-
        switch is measured against.
    stages:
        Network order ``n`` shared by every catalog entry — augmented
        variants add stages on top but keep the same ``2^n`` terminals,
        which is exactly what makes the comparison fair.
    traffic, rate, cycles, policy, drain:
        The single traffic point every grid cell runs.
    max_faults:
        Largest dead-cell count; ``None`` sweeps to saturation — the
        smallest interior-cell pool among the compared networks.
    draws:
        Independent fault samples per count (the seed axis).
    threshold:
        Availability level defining the saturation point.
    fault_seed_base:
        Forwarded to the campaign spec (disjoint fault populations).
    """

    networks: tuple = ("omega", "extra_stage_omega")
    stages: int = 4
    traffic: object = "uniform"
    rate: float = 0.9
    max_faults: int | None = None
    draws: int = 8
    cycles: int = 200
    policy: str = "drop"
    drain: bool = False
    threshold: float = 0.99
    fault_seed_base: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.networks, (str, Mapping)):
            object.__setattr__(self, "networks", (self.networks,))
        else:
            object.__setattr__(self, "networks", tuple(self.networks))
        if not self.networks:
            raise ReproError("reliability sweep needs at least one network")
        if not isinstance(self.stages, int) or isinstance(self.stages, bool) \
                or self.stages < 2:
            raise ReproError(
                f"stages must be an int >= 2, got {self.stages!r}"
            )
        if self.max_faults is not None and (
            not isinstance(self.max_faults, int) or self.max_faults < 0
        ):
            raise ReproError(
                f"max_faults must be None or an int >= 0, "
                f"got {self.max_faults!r}"
            )
        if not isinstance(self.draws, int) or self.draws < 1:
            raise ReproError(f"draws must be an int >= 1, got {self.draws!r}")
        if not 0.0 < float(self.threshold) <= 1.0:
            raise ReproError(
                f"threshold must be in (0, 1], got {self.threshold!r}"
            )

    def to_dict(self) -> dict:
        """The sweep as a JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "networks": [
                dict(t) if isinstance(t, Mapping) else t
                for t in self.networks
            ],
            "stages": self.stages,
            "traffic": (
                dict(self.traffic)
                if isinstance(self.traffic, Mapping) else self.traffic
            ),
            "rate": float(self.rate),
            "max_faults": self.max_faults,
            "draws": self.draws,
            "cycles": self.cycles,
            "policy": self.policy,
            "drain": self.drain,
            "threshold": float(self.threshold),
            "fault_seed_base": self.fault_seed_base,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "ReliabilitySweepSpec":
        """Rebuild a sweep from :meth:`to_dict` output (with validation)."""
        known = {
            "networks", "stages", "traffic", "rate", "max_faults",
            "draws", "cycles", "policy", "drain", "threshold",
            "fault_seed_base",
        }
        extra = set(doc) - known
        if extra:
            raise ReproError(
                f"unknown reliability sweep fields {sorted(extra)}"
            )
        return cls(**{k: doc[k] for k in known & set(doc)})

    @property
    def digest(self) -> str:
        """Stable 16-hex content identity of the sweep."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode()
        ).hexdigest()[:16]

    def resolved_max_faults(
        self, *, base_dir: str | Path | None = None
    ) -> int:
        """The sweep's largest fault count, saturation-resolved.

        Saturation is the smallest interior-cell pool
        (``(n_stages - 2) · size``, the candidate set of
        :meth:`FaultSet.random ` under spared terminal stages) among the
        compared networks — past it at least one network cannot even
        sample the requested fault count.
        """
        if self.max_faults is not None:
            return self.max_faults
        base = Path(base_dir) if base_dir is not None else None
        probe = CampaignSpec(
            topologies=self.networks, stages=(self.stages,)
        )
        pools = []
        for network in _grid_networks(probe, base):
            net = network.resolve()
            pools.append(max(0, (net.n_stages - 2) * net.size))
        return min(pools)

    def to_campaign(
        self, *, base_dir: str | Path | None = None
    ) -> CampaignSpec:
        """The equivalent campaign grid (``nested_faults`` set).

        Fault counts are dead cells only — the cell-failure model of the
        classical MIN reliability comparisons; the kill-order machinery
        severs links just as happily if a spec asks via the generic
        campaign ``faults`` axis.
        """
        return CampaignSpec(
            topologies=self.networks,
            stages=(self.stages,),
            traffic=(self.traffic,),
            rates=(self.rate,),
            faults=tuple(range(
                self.resolved_max_faults(base_dir=base_dir) + 1
            )),
            seeds=tuple(range(self.draws)),
            cycles=self.cycles,
            policy=self.policy,
            drain=self.drain,
            fault_seed_base=self.fault_seed_base,
            nested_faults=True,
        )

    def baseline_label(
        self, *, base_dir: str | Path | None = None
    ) -> str:
        """The resilience baseline: the first network's display label."""
        base = Path(base_dir) if base_dir is not None else None
        probe = CampaignSpec(
            topologies=(self.networks[0],), stages=(self.stages,)
        )
        return _grid_networks(probe, base)[0].label


def dumps_sweep(
    spec: ReliabilitySweepSpec, *, indent: int | None = None
) -> str:
    """Serialize a reliability sweep spec to a JSON string."""
    doc = {
        "format": _SWEEP_FORMAT,
        "version": _SWEEP_VERSION,
        **spec.to_dict(),
    }
    return json.dumps(doc, indent=indent)


def loads_sweep(text: str) -> ReliabilitySweepSpec:
    """Parse a reliability sweep spec from a JSON string (validated)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        raise ReproError(f"not valid JSON: {err}") from err
    if not isinstance(doc, dict) or doc.get("format") != _SWEEP_FORMAT:
        raise ReproError(
            f"not a {_SWEEP_FORMAT} document "
            f"(format={doc.get('format') if isinstance(doc, dict) else None!r})"
        )
    if doc.get("version") != _SWEEP_VERSION:
        raise ReproError(
            f"unsupported {_SWEEP_FORMAT} version {doc.get('version')!r}"
        )
    fields = {
        k: v for k, v in doc.items() if k not in ("format", "version")
    }
    return ReliabilitySweepSpec.from_dict(fields)


# -- aggregates --------------------------------------------------------------


def _availability_fn() -> Callable[[Mapping], float]:
    """A per-report memoized structural-availability evaluator.

    Availability is a pure function of (topology, fault counts, fault
    seed) — one backward reachability sweep per distinct key, shared by
    every seed and record that reuses the fault sample.
    """
    memo: dict[tuple, float] = {}

    def availability(scenario: Mapping) -> float:
        key = (
            canonical_json(scenario["topology"]),
            scenario["fault_cells"],
            scenario["fault_links"],
            scenario["fault_seed"],
        )
        if key not in memo:
            if obs.enabled():
                metrics().counter(COUNTER_AVAILABILITY_EVALS).add()
            net = NetworkSpec.from_spec(scenario["topology"]).resolve()
            faults = FaultSet.from_counts(
                net.n_stages,
                net.size,
                cells=scenario["fault_cells"],
                links=scenario["fault_links"],
                seed=scenario["fault_seed"],
            )
            memo[key] = (
                1.0 if faults is None else fault_connectivity(net, faults)
            )
        return memo[key]

    return availability


def _traffic_id(scenario: Mapping) -> str:
    return json.dumps(
        {k: v for k, v in scenario["traffic"].items() if k != "rate"},
        sort_keys=True,
        separators=(",", ":"),
    )


def _collect(records: Iterable[Mapping]) -> dict:
    """Group records for the reliability reduction.

    ``data[context][label]`` holds the topology's shape and, per
    ``(fault_cells, fault_links)`` count, per-seed measurements.  The
    *context* — traffic, rate, cycles, policy, drain, terminal size —
    excludes the stage count on purpose: augmented networks with extra
    stages on the same ``2^n`` terminals share a context with their
    baseline, which is what the resilience comparison needs.
    """
    data: dict[tuple, dict[str, dict]] = {}
    seen: dict[tuple, str] = {}
    availability = _availability_fn()
    for record in records:
        s = record["scenario"]
        r = record["report"]
        context = (
            _traffic_id(s),
            s["traffic"]["rate"],
            s["cycles"],
            s["policy"],
            s["drain"],
            r["size"],
        )
        label = s["topology"]["label"]
        count = (s["fault_cells"], s["fault_links"])
        seed = s["seed"]
        run = (context, label, count, seed)
        if run in seen:
            if seen[run] == record["hash"]:
                continue  # literal duplicate record: count it once
            raise ReproError(
                f"store holds two different results for {label} "
                f"faults={count} seed={seed} (hashes {seen[run]} and "
                f"{record['hash']}); restrict aggregation to one "
                "campaign's scenarios or use a fresh store"
            )
        seen[run] = record["hash"]
        topo = data.setdefault(context, {}).setdefault(
            label,
            {
                "n_stages": r["n_stages"],
                "size": r["size"],
                "traffic": r["traffic"],
                "counts": {},
            },
        )
        topo["counts"].setdefault(count, {})[seed] = {
            "availability": availability(s),
            "unroutable": int(r["unroutable"]),
            "offered": int(r["offered"]),
        }
    return data


def reliability_report(
    records: Iterable[Mapping],
    *,
    threshold: float = 0.99,
    baseline: str | None = None,
) -> dict:
    """The full reliability reduction of a record set.

    Returns ``{"curves", "summary", "resilience", "threshold",
    "baseline"}``:

    * ``curves`` — one row per (topology, fault count): mean/min/max
      structural availability over the draws and the observed
      unroutable fraction of offered packets.
    * ``summary`` — one row per topology: the saturation point (first
      count with mean availability below ``threshold``; ``None`` when
      the sweep never crosses it), the MTTF-style mean
      faults-to-first-disconnect over the draws (draws that never
      disconnect are censored at ``max count + 1``; their number is
      reported), and the topology's total cell budget.
    * ``resilience`` — one row per (non-baseline topology, fault
      count): availability gain over the baseline at the same count,
      the extra cells spent, and the gain per extra cell.  ``baseline``
      defaults to the topology with the smallest cell budget
      (lexicographically first on ties).

    Deterministic and order-independent: pass records from
    :func:`~repro.campaign.aggregate.load_records`.
    """
    if not 0.0 < float(threshold) <= 1.0:
        raise ReproError(f"threshold must be in (0, 1], got {threshold!r}")
    with obs.span(SPAN_RELIABILITY):
        return _reliability_report(
            records, threshold=float(threshold), baseline=baseline
        )


def _reliability_report(
    records: Iterable[Mapping],
    *,
    threshold: float,
    baseline: str | None,
) -> dict:
    data = _collect(records)
    curves: list[dict] = []
    summary: list[dict] = []
    resilience: list[dict] = []
    baselines: set[str] = set()
    for context in sorted(data):
        by_label = data[context]
        _tid, rate, _cyc, _pol, _drn, _size = context

        def _cells_total(label: str) -> int:
            topo = by_label[label]
            return topo["n_stages"] * topo["size"]

        if baseline is not None:
            if baseline not in by_label:
                raise ReproError(
                    f"baseline topology {baseline!r} has no records; "
                    f"store holds {sorted(by_label)}"
                )
            base_label = baseline
        else:
            base_label = min(
                sorted(by_label), key=lambda lbl: _cells_total(lbl)
            )
        baselines.add(base_label)

        mean_avail: dict[tuple[str, tuple], float] = {}
        for label in sorted(by_label):
            topo = by_label[label]
            counts = sorted(
                topo["counts"], key=lambda c: (c[0] + c[1], c)
            )
            disconnect: dict[int, int] = {}
            max_total = max(c[0] + c[1] for c in counts)
            for count in counts:
                seeds = topo["counts"][count]
                avail = [
                    seeds[seed]["availability"] for seed in sorted(seeds)
                ]
                offered = sum(seeds[s]["offered"] for s in seeds)
                unroutable = sum(seeds[s]["unroutable"] for s in seeds)
                mean_avail[(label, count)] = _mean(avail)
                curves.append(
                    {
                        "topology": label,
                        "n_stages": topo["n_stages"],
                        "size": topo["size"],
                        "traffic": topo["traffic"],
                        "rate": rate,
                        "fault_cells": count[0],
                        "fault_links": count[1],
                        "faults": count[0] + count[1],
                        "draws": len(seeds),
                        "availability_mean": _mean(avail),
                        "availability_min": min(avail),
                        "availability_max": max(avail),
                        "unroutable_fraction": (
                            unroutable / offered if offered else 0.0
                        ),
                    }
                )
                total = count[0] + count[1]
                for seed in sorted(seeds):
                    if (
                        seed not in disconnect
                        and seeds[seed]["availability"] < 1.0
                    ):
                        disconnect[seed] = total
            all_seeds = sorted(
                {s for c in counts for s in topo["counts"][c]}
            )
            censored = [s for s in all_seeds if s not in disconnect]
            mttf_samples = [
                disconnect.get(s, max_total + 1) for s in all_seeds
            ]
            saturation = next(
                (
                    c[0] + c[1] for c in counts
                    if mean_avail[(label, c)] < threshold
                ),
                None,
            )
            summary.append(
                {
                    "topology": label,
                    "n_stages": topo["n_stages"],
                    "size": topo["size"],
                    "traffic": topo["traffic"],
                    "rate": rate,
                    "cells_total": _cells_total(label),
                    "draws": len(all_seeds),
                    "max_faults": max_total,
                    "saturation": saturation,
                    "mttf_faults": (
                        _mean(mttf_samples) if mttf_samples else None
                    ),
                    "mttf_censored": len(censored),
                    "baseline": label == base_label,
                }
            )
        base_cells = _cells_total(base_label)
        for label in sorted(by_label):
            if label == base_label:
                continue
            extra = _cells_total(label) - base_cells
            shared = sorted(
                set(by_label[label]["counts"])
                & set(by_label[base_label]["counts"]),
                key=lambda c: (c[0] + c[1], c),
            )
            for count in shared:
                gain = (
                    mean_avail[(label, count)]
                    - mean_avail[(base_label, count)]
                )
                resilience.append(
                    {
                        "topology": label,
                        "baseline": base_label,
                        "rate": rate,
                        "fault_cells": count[0],
                        "fault_links": count[1],
                        "faults": count[0] + count[1],
                        "availability_gain": gain,
                        "extra_cells": extra,
                        "gain_per_cell": (
                            gain / extra if extra > 0 else None
                        ),
                    }
                )
    return {
        "threshold": threshold,
        "baseline": sorted(baselines),
        "curves": curves,
        "summary": summary,
        "resilience": resilience,
    }


def reliability_table(report: Mapping) -> str:
    """Render the availability curves as a fixed-width text table."""
    header = (
        f"{'topology':<22} {'traffic':<16} {'rate':>5} {'flt':>7} "
        f"{'draws':>5} {'avail':>7} {'min':>7} {'max':>7} {'unrout':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in report["curves"]:
        flt = f"{row['fault_cells']}c{row['fault_links']}l"
        lines.append(
            f"{row['topology']:<22} {row['traffic']:<16} "
            f"{row['rate']:>5.2f} {flt:>7} {row['draws']:>5} "
            f"{row['availability_mean']:>7.4f} "
            f"{row['availability_min']:>7.4f} "
            f"{row['availability_max']:>7.4f} "
            f"{row['unroutable_fraction']:>7.4f}"
        )
    return "\n".join(lines)


def reliability_summary_table(report: Mapping) -> str:
    """Render saturation/MTTF/resilience as fixed-width text tables."""
    header = (
        f"{'topology':<22} {'stages':>6} {'cells':>6} {'draws':>5} "
        f"{'saturation':>10} {'mttf':>7} {'censored':>8}"
    )
    lines = [
        f"saturation threshold: availability < {report['threshold']}",
        header,
        "-" * len(header),
    ]
    for row in report["summary"]:
        sat = "-" if row["saturation"] is None else str(row["saturation"])
        mttf = (
            "-" if row["mttf_faults"] is None
            else f"{row['mttf_faults']:.2f}"
        )
        mark = " *" if row["baseline"] else ""
        lines.append(
            f"{row['topology'] + mark:<22} {row['n_stages']:>6} "
            f"{row['cells_total']:>6} {row['draws']:>5} {sat:>10} "
            f"{mttf:>7} {row['mttf_censored']:>8}"
        )
    lines.append("(* resilience baseline; mttf censored at max faults + 1)")
    if report["resilience"]:
        header2 = (
            f"{'topology':<22} {'vs':<18} {'flt':>7} {'Δavail':>8} "
            f"{'+cells':>6} {'per-cell':>9}"
        )
        lines += ["", header2, "-" * len(header2)]
        for row in report["resilience"]:
            flt = f"{row['fault_cells']}c{row['fault_links']}l"
            per = (
                "-" if row["gain_per_cell"] is None
                else f"{row['gain_per_cell']:+.5f}"
            )
            lines.append(
                f"{row['topology']:<22} {row['baseline']:<18} {flt:>7} "
                f"{row['availability_gain']:>+8.4f} "
                f"{row['extra_cells']:>6} {per:>9}"
            )
    return "\n".join(lines)


def dumps_reliability(
    report: Mapping, *, indent: int | None = None
) -> str:
    """The canonical reliability report as a JSON string.

    Deterministic by construction — sorted rows, sorted keys, no
    wall-clock fields — so two stores holding the same scenario results
    serialize to byte-identical reports regardless of completion order,
    supervision mode or interruptions.
    """
    doc = {
        "format": _RELIABILITY_FORMAT,
        "version": _RELIABILITY_VERSION,
        **dict(report),
    }
    return json.dumps(doc, sort_keys=True, indent=indent)


def reliability_from_store(
    store,
    *,
    hashes: Iterable[str] | None = None,
    threshold: float = 0.99,
    baseline: str | None = None,
) -> dict:
    """:func:`reliability_report` straight from a result store (path ok)."""
    return reliability_report(
        load_records(store, hashes=hashes),
        threshold=threshold,
        baseline=baseline,
    )
