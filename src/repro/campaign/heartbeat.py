"""Campaign heartbeats: the externally-observable pulse of a sweep.

A running campaign is invisible from outside its process — the store
grows, but nothing says how fast, by whom, or how much is left.  The
runner therefore drops a tiny ``repro-campaign-heartbeat`` JSON document
next to the store (``sweep.jsonl`` → ``sweep.heartbeat.json``) every
``interval`` seconds: done/total counts, completion rate, ETA, per-worker
liveness and — when a tracer is active — the drained counter snapshot.

Writes go through **atomic rename**: the document lands in a temp file
in the same directory and ``os.replace``-s over the target, so a
concurrent reader sees either the previous complete beat or the next
one, never a torn write.  That property is what makes
``python -m repro campaign watch`` (and any future serve daemon) safe to
point at a store owned by another process.

The heartbeat is pure telemetry, like the tracer: it never touches the
store, the records, or anything digest-bearing — a sweep with heartbeats
disabled produces a byte-identical store.

:func:`watch_campaign` is the consumer: a generator polling
store + heartbeat and yielding merged snapshots until the run completes
(or a timeout passes), which the CLI renders as refreshing progress.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterator

from repro.core.errors import ReproError

__all__ = [
    "HEARTBEAT_ENV",
    "HEARTBEAT_FORMAT",
    "HEARTBEAT_VERSION",
    "HeartbeatWriter",
    "default_interval",
    "heartbeat_path",
    "read_heartbeat",
    "render_watch_line",
    "snapshot",
    "watch_campaign",
]

HEARTBEAT_FORMAT = "repro-campaign-heartbeat"
HEARTBEAT_VERSION = 1

#: Environment override for the heartbeat interval in seconds;
#: ``0`` (or any value <= 0) disables heartbeats entirely.
HEARTBEAT_ENV = "REPRO_CAMPAIGN_HEARTBEAT"

#: Default seconds between beats — coarse enough to be free next to any
#: real group task, fine enough for a live progress display.
DEFAULT_INTERVAL = 1.0

#: Fallback staleness threshold for the watch renderer when the run
#: has no task timeout configured: a worker with no dispatch or
#: completed group for this many seconds is reported as stalled (it may
#: legitimately be deep in one long slab).  Runs with a ``task_timeout``
#: use that timeout as the threshold instead — past it, the supervisor
#: would have killed the worker, so a silent one is genuinely stuck.
STALE_AFTER = 30.0


def default_interval() -> float:
    """The configured heartbeat interval: env override or the default.

    ``REPRO_CAMPAIGN_HEARTBEAT=0`` (or negative, or unparseable as a
    float: treated as 0) disables heartbeats.
    """
    raw = os.environ.get(HEARTBEAT_ENV, "").strip()
    if not raw:
        return DEFAULT_INTERVAL
    try:
        return float(raw)
    except ValueError:
        return 0.0


def heartbeat_path(store_path: str | Path) -> Path:
    """The heartbeat file paired with a store: ``<stem>.heartbeat.json``."""
    store = Path(store_path)
    return store.with_name(store.stem + ".heartbeat.json")


class HeartbeatWriter:
    """Periodic atomic-rename snapshots of one campaign run's progress.

    Created by :func:`~repro.campaign.runner.run_campaign` when
    heartbeats are enabled; :meth:`beat` is called after every stored
    record (rate-limited to ``interval``) and :meth:`finish` stamps the
    terminal ``complete`` document.
    """

    def __init__(
        self,
        store_path: str | Path,
        *,
        total: int,
        skipped: int = 0,
        workers: int = 1,
        batch: int = 1,
        backend: str | None = None,
        interval: float = DEFAULT_INTERVAL,
        task_timeout: float | None = None,
    ) -> None:
        self.path = heartbeat_path(store_path)
        self.store = str(store_path)
        self.total = total
        self.skipped = skipped
        self.workers = workers
        self.batch = batch
        self.backend = backend
        self.interval = interval
        self.task_timeout = task_timeout
        self._t0 = time.time()
        self._perf0 = time.perf_counter()
        self._last_beat = None  # monotonic stamp of the last write
        self._worker_rows: dict[int, dict] = {}

    # -- accounting ----------------------------------------------------------

    def note_worker(
        self, pid: int, scenarios: int, busy_s: float
    ) -> None:
        """Fold one finished group task into the per-worker liveness rows."""
        row = self._worker_rows.setdefault(
            pid,
            {"groups": 0, "scenarios": 0, "busy_s": 0.0, "last_seen": None},
        )
        row["groups"] += 1
        row["scenarios"] += scenarios
        row["busy_s"] += busy_s
        row["last_seen"] = self._now()

    def note_dispatch(self, pid: int) -> None:
        """Mark a task handed to a worker — the start of its silence.

        Keeps ``last_seen`` honest for hang detection: a worker that
        goes quiet *after* a dispatch ages from the dispatch, so the
        watch renderer can flag it as stalled once its silence exceeds
        the task timeout.
        """
        row = self._worker_rows.setdefault(
            pid,
            {"groups": 0, "scenarios": 0, "busy_s": 0.0, "last_seen": None},
        )
        row["last_seen"] = self._now()

    def _now(self) -> float:
        # Same hybrid clock as the tracer: a wall anchor advanced by
        # perf_counter deltas, monotonic within this process.
        return self._t0 + (time.perf_counter() - self._perf0)

    # -- writing -------------------------------------------------------------

    def _doc(self, done: int, status: str) -> dict:
        now = self._now()
        elapsed = max(now - self._t0, 1e-12)
        ran = done - self.skipped
        rate = ran / elapsed
        remaining = self.total - done
        eta = remaining / rate if rate > 0 else None
        counters: dict = {}
        from repro.obs import trace as obs
        from repro.obs.metrics import metrics

        if obs.enabled():
            counters = metrics().snapshot()["counters"]
        return {
            "format": HEARTBEAT_FORMAT,
            "version": HEARTBEAT_VERSION,
            "pid": os.getpid(),
            "store": self.store,
            "status": status,
            "total": self.total,
            "done": done,
            "skipped": self.skipped,
            "pending": remaining,
            "workers": self.workers,
            "batch": self.batch,
            "backend": self.backend,
            "task_timeout": self.task_timeout,
            "started_ts": self._t0,
            "updated_ts": now,
            "elapsed_s": elapsed,
            "rate_per_s": rate,
            "eta_s": eta,
            "worker_liveness": {
                str(pid): dict(row)
                for pid, row in sorted(self._worker_rows.items())
            },
            "counters": counters,
        }

    def _write(self, doc: dict) -> None:
        # Atomic publish: temp file in the same directory (same
        # filesystem, so replace() is a rename, not a copy), then one
        # os.replace over the target.  Readers never see partial JSON.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(
            f".{self.path.name}.{os.getpid()}.tmp"
        )
        tmp.write_text(
            json.dumps(doc, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.path)

    def beat(self, done: int, force: bool = False) -> bool:
        """Publish a ``running`` heartbeat, rate-limited to ``interval``.

        Returns True when a document was actually written.
        """
        now = time.perf_counter()
        if (
            not force
            and self._last_beat is not None
            and now - self._last_beat < self.interval
        ):
            return False
        self._last_beat = now
        self._write(self._doc(done, "running"))
        return True

    def finish(self, done: int) -> None:
        """Publish the terminal ``complete`` heartbeat (always written)."""
        self._last_beat = time.perf_counter()
        self._write(self._doc(done, "complete"))


# -- reading / watching ------------------------------------------------------


def read_heartbeat(path: str | Path) -> dict | None:
    """Load a heartbeat document; ``None`` when the file is absent.

    Raises :class:`ReproError` for a file that exists but is not a
    ``repro-campaign-heartbeat`` document — atomic renames mean a
    partial read is a format violation, not an expected race.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        raise ReproError(
            f"{path}: heartbeat is not valid JSON: {err}"
        ) from err
    if not isinstance(doc, dict) or doc.get("format") != HEARTBEAT_FORMAT:
        raise ReproError(f"{path}: not a {HEARTBEAT_FORMAT} document")
    if doc.get("version") != HEARTBEAT_VERSION:
        raise ReproError(
            f"{path}: unsupported heartbeat version "
            f"{doc.get('version')!r}"
        )
    return doc


def snapshot(store_path: str | Path) -> dict:
    """One merged progress observation of a (possibly foreign) run.

    Combines the heartbeat (authoritative for totals/rates while the
    runner lives) with a cheap record count of the store itself
    (authoritative for what is actually persisted).  ``status`` is
    ``"waiting"`` until either exists.
    """
    from repro.campaign.store import ResultStore

    store = Path(store_path)
    beat = read_heartbeat(heartbeat_path(store))
    records = ResultStore(store).count_records() if store.exists() else 0
    if beat is None:
        return {
            "status": "running" if records else "waiting",
            "done": records,
            "total": None,
            "records": records,
            "heartbeat": None,
        }
    return {
        "status": beat["status"],
        "done": beat["done"],
        "total": beat["total"],
        "records": records,
        "heartbeat": beat,
    }


def watch_campaign(
    store_path: str | Path,
    *,
    interval: float = 0.5,
    timeout: float | None = None,
) -> Iterator[dict]:
    """Poll store + heartbeat, yielding snapshots until completion.

    Yields at least one snapshot.  The generator ends after yielding a
    snapshot whose status is ``complete`` — or, with ``timeout``, after
    that many seconds (whatever state the run is in), letting callers
    distinguish a finished sweep (last snapshot says so) from giving up.
    """
    t0 = time.perf_counter()
    while True:
        snap = snapshot(store_path)
        yield snap
        if snap["status"] == "complete":
            return
        if (
            timeout is not None
            and time.perf_counter() - t0 >= timeout
        ):
            return
        time.sleep(interval)


def render_watch_line(snap: dict) -> str:
    """One refreshing progress line for ``campaign watch``."""
    status = snap["status"]
    done = snap["done"]
    total = snap["total"]
    if total:
        frac = done / total
        width = 24
        filled = int(round(frac * width))
        bar = "#" * filled + "-" * (width - filled)
        line = f"[{bar}] {done}/{total} ({frac * 100:5.1f}%)"
    else:
        line = f"{done} record(s) stored"
    beat = snap.get("heartbeat")
    if beat is not None:
        line += f"  {beat['rate_per_s']:.1f}/s"
        if status == "running" and beat.get("eta_s") is not None:
            line += f"  eta {beat['eta_s']:.0f}s"
        live = stalled = 0
        now = beat["updated_ts"]
        # A worker silent longer than the run's task timeout is stuck:
        # the supervisor would have killed and respawned it otherwise.
        # Without a timeout, fall back to the coarse staleness window.
        threshold = beat.get("task_timeout") or STALE_AFTER
        for row in beat.get("worker_liveness", {}).values():
            seen = row.get("last_seen")
            if seen is not None and now - seen <= threshold:
                live += 1
            else:
                stalled += 1
        if live or stalled:
            line += f"  workers {live} live"
            if stalled:
                line += f" / {stalled} stalled"
    return f"{line}  [{status}]"
