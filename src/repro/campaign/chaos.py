"""Deterministic chaos injection for supervisor testing.

Fault-tolerance code that is only exercised by real segfaults is
untested code.  This module injects the three failure modes the
supervisor must survive — worker **crash** (``SIGKILL`` to self),
**hang** (sleep past any timeout) and **raise** (a poison exception) —
plus a benign **slow** mode, all *deterministically*: every decision is
a pure function of ``(chaos seed, scenario digest, attempt)``, so a
chaotic run is exactly reproducible and a retried task does not re-roll
the same doom forever.

Off by default.  Enabled by the ``REPRO_CHAOS`` environment variable
(or an explicit :class:`ChaosSpec` passed to ``run_campaign``), a
comma-separated ``key=value`` spec::

    REPRO_CHAOS="seed=7,crash=0.1,hang=0.05,raise=0.1,slow=0.2,slow_s=0.01"
    REPRO_CHAOS="poison=6fa1"            # these digests always raise
    REPRO_CHAOS="poison_numba=6fa1"      # raise unless degraded to numpy

Probabilistic modes (``crash``/``hang``/``raise``/``slow``) re-roll per
attempt — a scenario that crashed on attempt 0 usually succeeds on
retry, which is what real transient faults look like.  ``poison=``
digests (prefix match) fail on *every* attempt: they are the truly
poisonous scenarios that must end up quarantined.  ``poison_numba=``
digests fail only while the task has not been degraded to the numpy
backend — the deterministic stand-in for "fails under the numba JIT,
works on the reference kernels", so the graceful-degradation path is
testable on numpy-only installs.

Chaos is an execution hint in the same sense as tracing and backends:
it never enters a spec, a digest or a store record, and a surviving
scenario's report is bit-identical with chaos on or off (the ``slow``
sleep happens outside the simulator's timed region).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field

from repro.core.errors import ReproError

__all__ = [
    "CHAOS_ENV",
    "ChaosInjected",
    "ChaosSpec",
    "chaos_from_env",
    "parse_chaos",
]

#: Environment variable holding the chaos spec; empty/absent = off.
CHAOS_ENV = "REPRO_CHAOS"

_FLOAT_KEYS = ("crash", "hang", "raise", "slow")


class ChaosInjected(ReproError):
    """The exception raised by chaos ``raise``/``poison`` injection."""


def _unit(seed: int, digest: str, attempt: int, mode: str) -> float:
    """A deterministic uniform draw in [0, 1) per (task, attempt, mode)."""
    key = f"{seed}:{digest}:{attempt}:{mode}".encode("utf-8")
    h = hashlib.sha256(key).digest()
    return int.from_bytes(h[:8], "big") / 2.0**64


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed chaos configuration (see the module docstring).

    ``crash_p``/``hang_p``/``raise_p``/``slow_p`` are independent
    per-scenario-per-attempt probabilities, evaluated in that order
    (first trigger wins).  ``poison``/``poison_numba`` are digest
    prefixes with deterministic behavior regardless of attempt.
    """

    seed: int = 0
    crash_p: float = 0.0
    hang_p: float = 0.0
    raise_p: float = 0.0
    slow_p: float = 0.0
    slow_s: float = 0.01
    hang_s: float = 3600.0
    poison: tuple = ()
    poison_numba: tuple = ()

    def __post_init__(self) -> None:
        for name in ("crash_p", "hang_p", "raise_p", "slow_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ReproError(
                    f"chaos {name} must be a probability in [0, 1], "
                    f"got {p!r}"
                )

    def __bool__(self) -> bool:
        return bool(
            self.crash_p or self.hang_p or self.raise_p or self.slow_p
            or self.poison or self.poison_numba
        )

    # -- decisions ---------------------------------------------------------

    def decide(
        self, digest: str, attempt: int, backend: str | None = None
    ) -> str | None:
        """The injected action for one scenario attempt, or ``None``.

        Pure: the same arguments always yield the same action.
        ``backend`` is the task's backend override (``"numpy"`` once the
        supervisor has degraded it), which is what ``poison_numba``
        keys off.
        """
        if any(digest.startswith(p) for p in self.poison):
            return "poison"
        if backend != "numpy" and any(
            digest.startswith(p) for p in self.poison_numba
        ):
            return "poison_numba"
        for mode, p in (
            ("crash", self.crash_p),
            ("hang", self.hang_p),
            ("raise", self.raise_p),
            ("slow", self.slow_p),
        ):
            if p > 0.0 and _unit(self.seed, digest, attempt, mode) < p:
                return mode
        return None

    def apply(
        self,
        digests,
        attempt: int,
        backend: str | None = None,
    ) -> None:
        """Execute the injected actions for a task's scenarios, in order.

        Called inside the worker immediately before the group runs.
        ``crash`` SIGKILLs the process (indistinguishable from a
        segfault or the OOM killer), ``hang`` sleeps ``hang_s`` seconds
        (far past any sane task timeout), ``raise``/``poison`` raise
        :class:`ChaosInjected`, ``slow`` sleeps ``slow_s`` seconds and
        continues.
        """
        for digest in digests:
            action = self.decide(digest, attempt, backend=backend)
            if action is None:
                continue
            if action == "crash":
                os.kill(os.getpid(), signal.SIGKILL)
            elif action == "hang":
                time.sleep(self.hang_s)
            elif action == "slow":
                time.sleep(self.slow_s)
            else:  # raise / poison / poison_numba
                raise ChaosInjected(
                    f"chaos {action} injected for scenario {digest} "
                    f"(attempt {attempt})"
                )


def parse_chaos(text: str) -> ChaosSpec:
    """Parse a ``REPRO_CHAOS`` spec string into a :class:`ChaosSpec`.

    Comma-separated ``key=value`` pairs; digest-prefix lists use ``+``
    as the separator (``poison=6fa1+93c0``).  Unknown keys are a loud
    error — a typo that silently disabled chaos would invalidate a
    whole test run.
    """
    spec: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not key or not value:
            raise ReproError(
                f"chaos spec entries must look like key=value, got {part!r}"
            )
        if key in _FLOAT_KEYS:
            spec[f"{key}_p"] = float(value)
        elif key in ("slow_s", "hang_s"):
            spec[key] = float(value)
        elif key == "seed":
            spec[key] = int(value)
        elif key in ("poison", "poison_numba"):
            spec[key] = tuple(p for p in value.split("+") if p)
        else:
            raise ReproError(
                f"unknown chaos key {key!r}; expected one of "
                "seed, crash, hang, raise, slow, slow_s, hang_s, "
                "poison, poison_numba"
            )
    return ChaosSpec(**spec)


def chaos_from_env() -> ChaosSpec | None:
    """The environment-configured chaos spec, or ``None`` when off."""
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if not raw:
        return None
    spec = parse_chaos(raw)
    return spec if spec else None
