"""The append-only JSONL result store behind campaign runs.

One file per campaign: a ``repro-campaign-store`` header line followed by
one JSON record per completed scenario —

::

    {"format": "repro-campaign-store", "version": 1}
    {"hash": "6fa1…", "scenario": {…}, "report": {…}}
    {"hash": "93c0…", "scenario": {…}, "report": {…}}

Records are appended and flushed as workers finish, so a killed run loses
at most the line being written.  :meth:`ResultStore.records` tolerates a
truncated final line for exactly that reason — crash-safe ``--resume``
reads the surviving records, skips their scenarios and re-runs the rest.

The store is keyed by the scenario digest
(:attr:`repro.spec.scenario.ScenarioSpec.digest`): append order is
completion order and therefore *not* deterministic under a worker pool,
but every consumer (resume, aggregation) sorts by hash, so campaign
outputs are order-independent.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterator, Mapping

from repro.core.errors import ReproError
from repro.sim.metrics import SimReport
from repro.spec.scenario import canonical_json

__all__ = ["ResultStore", "record_crc"]

_FORMAT = "repro-campaign-store"
_VERSION = 1

#: Record keys covered by the per-record CRC (everything but the CRC).
_CRC_KEYS = ("hash", "scenario", "report")


def record_crc(record: Mapping) -> str:
    """CRC32 of a record's canonical JSON, as 8 hex digits.

    Computed over the ``hash``/``scenario``/``report`` triple in
    canonical form (sorted keys, no whitespace), so the checksum is
    independent of the on-disk spelling and of the ``crc`` field
    itself.  Guards against *torn or bit-rotted mid-file records*: the
    append path already makes torn tails recoverable, but a corruption
    anywhere else was previously only detectable, never attributable
    or repairable.
    """
    doc = {k: record[k] for k in _CRC_KEYS}
    return format(zlib.crc32(canonical_json(doc).encode("utf-8")), "08x")


class ResultStore:
    """An append-only scenario → report store on one JSONL file.

    Parameters
    ----------
    path:
        The store file; created (with its header line) on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._tail_checked = False

    def exists(self) -> bool:
        """True when the store file is present on disk."""
        return self.path.exists()

    # -- writing -----------------------------------------------------------

    def _ensure_header(self) -> None:
        if self.path.exists() and self.path.stat().st_size > 0:
            self._repair_tail()
            if self.path.stat().st_size > 0:
                return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {"format": _FORMAT, "version": _VERSION}
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")

    def _repair_tail(self) -> None:
        """Truncate a torn final line so appends start on a line boundary.

        A run killed mid-write leaves a partial record without its
        newline; appending straight after it would corrupt the file, so
        the torn bytes (which :meth:`records` already ignores) are cut.
        Torn tails can only predate this process's appends (every append
        flushes a complete line), so the check runs once per store
        instance and probes just the final byte unless repair is needed.
        """
        if self._tail_checked:
            return
        self._tail_checked = True
        with open(self.path, "r+b") as fh:
            fh.seek(-1, 2)
            if fh.read(1) == b"\n":
                return
            fh.seek(0)
            data = fh.read()
            keep = data.rfind(b"\n") + 1  # 0 when no newline survived
            fh.truncate(keep)

    def append(
        self, scenario_hash: str, scenario: Mapping, report: Mapping
    ) -> None:
        """Append one completed scenario record and flush it to disk.

        ``report`` is the :meth:`~repro.sim.metrics.SimReport.to_dict`
        form — the store holds JSON, not objects.  Each record carries
        a ``crc`` field (:func:`record_crc`) so ``campaign store
        verify``/``repair`` can detect corrupt mid-file records; stores
        written before the field existed verify fine (their records
        simply have no checksum to check).
        """
        self._ensure_header()
        record = {
            "hash": scenario_hash,
            "scenario": dict(scenario),
            "report": dict(report),
        }
        record["crc"] = record_crc(record)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    # -- reading -----------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Yield the stored records, skipping a torn (truncated) tail line.

        Raises :class:`ReproError` when the file exists but is not a
        ``repro-campaign-store`` document, or when corruption appears
        anywhere other than the final line.
        """
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as err:
            raise ReproError(
                f"{self.path}: store header is not valid JSON: {err}"
            ) from err
        if not isinstance(header, dict) or header.get("format") != _FORMAT:
            raise ReproError(
                f"{self.path}: not a {_FORMAT} document "
                f"(format={header.get('format')!r})"
                if isinstance(header, dict)
                else f"{self.path}: store header must be a JSON object"
            )
        if header.get("version") != _VERSION:
            raise ReproError(
                f"{self.path}: unsupported store version "
                f"{header.get('version')!r}; expected {_VERSION}"
            )
        for i, line in enumerate(lines[1:], start=2):
            torn = False
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                record, torn = None, True
            if not torn:
                torn = (
                    not isinstance(record, dict)
                    or "hash" not in record
                    or "scenario" not in record
                    or "report" not in record
                )
            if torn:
                if i == len(lines):  # torn tail: the crash-interrupted write
                    return
                raise ReproError(
                    f"{self.path}: corrupt record on line {i} "
                    "(not the final line — refusing to guess)"
                ) from None
            yield record

    # -- integrity ---------------------------------------------------------

    def _classify_lines(self) -> tuple[list[str], list[tuple[int, str, str]]]:
        """Split the store body into good lines and bad ``(lineno, line,
        reason)`` triples.

        Reads raw lines (unlike :meth:`records`, which refuses mid-file
        corruption outright) so every record can be judged
        independently: invalid JSON, a non-object, missing keys, or a
        ``crc`` mismatch all mark a line bad.  Records without a ``crc``
        field (written before the field existed) are judged on shape
        alone.  The header is validated the same way :meth:`records`
        validates it — a wrong header means the file is not a store, and
        that is an error, not a repair.
        """
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        # Reuse records()'s header validation by parsing just line 1.
        try:
            header = json.loads(lines[0]) if lines else None
        except json.JSONDecodeError as err:
            raise ReproError(
                f"{self.path}: store header is not valid JSON: {err}"
            ) from err
        if not isinstance(header, dict) or header.get("format") != _FORMAT:
            raise ReproError(f"{self.path}: not a {_FORMAT} document")
        if header.get("version") != _VERSION:
            raise ReproError(
                f"{self.path}: unsupported store version "
                f"{header.get('version')!r}; expected {_VERSION}"
            )
        good: list[str] = []
        bad: list[tuple[int, str, str]] = []
        for i, line in enumerate(lines[1:], start=2):
            reason = None
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                record, reason = None, "invalid JSON"
            if reason is None and (
                not isinstance(record, dict)
                or any(k not in record for k in _CRC_KEYS)
            ):
                reason = "missing record keys"
            if (
                reason is None
                and "crc" in record
                and record["crc"] != record_crc(record)
            ):
                reason = (
                    f"crc mismatch (stored {record['crc']}, "
                    f"computed {record_crc(record)})"
                )
            if reason is None:
                good.append(line)
            else:
                bad.append((i, line, reason))
        return good, bad

    def verify(self) -> dict:
        """Check every record line, returning a corruption report.

        Returns ``{"records": n_good, "bad": [{"line": i, "reason":
        …}, …], "ok": bool}``.  Unlike :meth:`records` this never raises
        on record-level corruption (only on a broken header) — it exists
        to *diagnose* stores that ``records()`` refuses to read, e.g.
        after a disk error or a torn concurrent write.  A torn tail
        shows up here as one bad final line; :meth:`repair` turns that
        back into a store ``--resume`` accepts.
        """
        good, bad = self._classify_lines()
        return {
            "path": str(self.path),
            "records": len(good),
            "bad": [
                {"line": lineno, "reason": reason}
                for lineno, _line, reason in bad
            ],
            "ok": not bad,
        }

    def repair(self) -> dict:
        """Drop corrupt record lines, preserving them in a ``.bad`` sidecar.

        Atomically rewrites the store (header + good lines) via a temp
        file and :func:`os.replace`; the dropped raw lines are appended
        to ``<path>.bad`` so nothing is destroyed — a partially
        recoverable record can still be salvaged by hand.  Returns the
        :meth:`verify`-style report plus ``"dropped"`` and
        ``"bad_file"`` keys.  A clean store is left untouched.
        """
        good, bad = self._classify_lines()
        report = {
            "path": str(self.path),
            "records": len(good),
            "bad": [
                {"line": lineno, "reason": reason}
                for lineno, _line, reason in bad
            ],
            "ok": True,
            "dropped": len(bad),
            "bad_file": None,
        }
        if not bad:
            return report
        bad_path = self.path.with_name(self.path.name + ".bad")
        with open(bad_path, "a", encoding="utf-8") as fh:
            for lineno, line, reason in bad:
                fh.write(line + "\n")
        header = json.dumps({"format": _FORMAT, "version": _VERSION})
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            "\n".join([header, *good]) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.path)
        report["bad_file"] = str(bad_path)
        return report

    def count_records(self) -> int:
        """A cheap record count: complete lines minus the header.

        Counts newline-terminated lines without parsing any JSON — the
        poll a live ``campaign watch`` issues every tick against a store
        another process is appending to.  A torn tail line (no newline
        yet) is naturally excluded, matching what :meth:`records`
        yields; the count trusts the header without validating it, so
        a non-store file reports its line count, not an error.
        """
        if not self.path.exists():
            return 0
        with open(self.path, "rb") as fh:
            data = fh.read()
        return max(0, data.count(b"\n") - 1)

    def hashes(self) -> set[str]:
        """The scenario hashes already stored (the resume skip-set)."""
        return {record["hash"] for record in self.records()}

    def reports(self) -> dict[str, SimReport]:
        """hash → :class:`SimReport` for every stored record."""
        return {
            record["hash"]: SimReport.from_dict(record["report"])
            for record in self.records()
        }

    def scenario_specs(self) -> dict[str, "ScenarioSpec"]:
        """hash → :class:`~repro.spec.scenario.ScenarioSpec` per record.

        Parses each stored scenario wire dict back into its typed spec —
        the inspection path for tooling that wants to re-resolve or
        re-run stored scenarios.
        """
        from repro.spec.scenario import ScenarioSpec

        return {
            record["hash"]: ScenarioSpec.from_spec(record["scenario"])
            for record in self.records()
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def __contains__(self, scenario_hash: str) -> bool:
        return scenario_hash in self.hashes()

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r})"
