"""Fan a campaign's scenarios out over a ``multiprocessing`` worker pool.

The parent process never ships network objects: a worker receives frozen
:class:`~repro.spec.scenario.ScenarioSpec` values (a few hundred bytes
each), resolves them through the registries — rebuilding the topology
from the catalog or the referenced ``repro-midigraph`` file, the traffic
pattern and the fault sample — runs the simulator and hands the results
back.  The parent streams every finished record straight into the
:class:`~repro.campaign.store.ResultStore`, so progress survives a kill
at any point and ``resume=True`` re-runs only the missing scenarios.

Three layers of batching and caching keep the sweep hot:

* **Scenario groups.**  Pending scenarios are grouped by
  :meth:`~repro.spec.scenario.ScenarioSpec.group_key` — same topology,
  cycles, policy, drain and fault sample — and each group (up to
  ``batch`` scenarios) runs as one
  :func:`~repro.sim.batch.simulate_batch` call: one compiled network,
  one pass over the cycle loop, bit-identical per-scenario reports.
  ``batch=1`` recovers the per-scenario dispatch exactly.
* **Warm persistent workers.**  Pool workers live for the whole sweep
  and start hot: the pool initializer grows the digest-keyed
  compiled-network LRU (:func:`repro.sim.compiled.ensure_compile_cache_min`)
  to the sweep's distinct ``(topology, faults)`` groups, and — when the
  selected kernel backend resolves to ``numba`` — pre-compiles the
  fused JIT loop (:func:`repro.sim.kernels.warm_jit`) so no slab pays
  the one-time compile.  Network resolution is additionally memoized per
  process by catalog entry / file content digest.
* **Zero-copy result return.**  With ``workers > 1`` each group task
  allocates one ``multiprocessing.shared_memory`` metric buffer, writes
  every numeric report field (counters, latency summary, per-stage
  utilization) straight into it and returns only the buffer name.  The
  parent reassembles the :class:`~repro.sim.metrics.SimReport` values
  from the buffer plus the specs it already holds, then unlinks it —
  nothing a report contains is pickled through the pool pipe, and only
  in-flight results (never the whole sweep) hold segments.  The classic
  pickled-record path remains as the fallback (``zero_copy=False`` or
  ``REPRO_CAMPAIGN_SHM=0``) and produces byte-identical stores.

``workers=1`` runs inline in the parent (no pool, easiest to debug and to
interrupt deterministically in tests); ``workers>1`` dispatches through
the fault-tolerant supervisor (:mod:`repro.campaign.supervisor`) —
completion order is nondeterministic, results are not: every scenario's
report is a pure function of its spec.

**Fault tolerance.**  Both paths route failures through the supervisor's
recovery policy: a failed scenario group is bisected to isolate the
poison, singletons are retried with exponential backoff + deterministic
jitter, a numba-backend failure is retried once on numpy, and terminal
failures land — with their full remote traceback — in the
``repro-campaign-quarantine`` sidecar next to the store
(``on_error="quarantine"``, the default) or abort the sweep as a
:class:`~repro.campaign.errors.RemoteTaskError` (``on_error="abort"``).
With ``workers>1`` the supervisor additionally enforces per-task
wall-clock timeouts (``task_timeout``), SIGKILLs hung workers and
respawns crashed ones, so a segfault or a stuck JIT compile costs one
task attempt, not the campaign.  Quarantined scenarios are skipped on
``resume`` and re-run after ``python -m repro campaign quarantine
--requeue``.  The crash-safety oracle is unchanged: once every
non-poison scenario completes, store bytes and aggregates are identical
to a fault-free run.  ``supervised=False`` restores the bare
``Pool.imap_unordered`` loop (the overhead baseline benchmarked by
``benchmarks/bench_campaign.py``).  A deterministic chaos harness
(:mod:`repro.campaign.chaos`, ``REPRO_CHAOS``) injects worker
crash/hang/raise/slow faults inside workers to test all of this.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.core.errors import ReproError
from repro.campaign import supervisor as sup
from repro.campaign.chaos import ChaosSpec, chaos_from_env, parse_chaos
from repro.campaign.errors import (
    QuarantineStore,
    RemoteTaskError,
    quarantine_path,
)
from repro.campaign.heartbeat import (
    HeartbeatWriter,
    default_interval as hb_default_interval,
)
from repro.campaign.spec import CampaignSpec, expand_scenarios
from repro.campaign.store import ResultStore
from repro.obs import trace as obs
from repro.obs.log import get_logger
from repro.obs.manifest import RunManifest
from repro.obs.metrics import metrics
from repro.sim.batch import simulate_batch
from repro.sim.compiled import compile_cache_info, ensure_compile_cache_min
from repro.sim.engine import simulate
from repro.sim.kernels import resolve_backend, warm_jit
from repro.sim.metrics import SimReport
from repro.spec.scenario import ScenarioSpec

__all__ = ["run_campaign", "run_scenario"]

_log = get_logger("campaign")

#: Environment kill-switch for the shared-memory result path.
SHM_ENV = "REPRO_CAMPAIGN_SHM"

# Numeric SimReport fields shipped through the shared-memory matrix, in
# column order; the variable-length stage_utilization tail follows.
_SHM_FIELDS = (
    "n_stages", "size", "cycles", "drain_cycles", "seed",
    "offered", "injected", "delivered", "dropped", "unroutable",
    "blocked_moves", "in_flight", "total_hops",
    "mean_latency", "p99_latency", "elapsed",
)
_SHM_FLOAT_FIELDS = frozenset({"mean_latency", "p99_latency", "elapsed"})
_SHM_INT_FIELDS = frozenset(_SHM_FIELDS) - _SHM_FLOAT_FIELDS


def _as_spec(scenario) -> ScenarioSpec:
    """Coerce any accepted scenario form into a :class:`ScenarioSpec`."""
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if isinstance(scenario, Mapping):
        return ScenarioSpec.from_spec(scenario)
    spec = getattr(scenario, "spec", None)  # deprecated Scenario shim
    if isinstance(spec, ScenarioSpec):
        return spec
    raise ReproError(
        f"expected a ScenarioSpec or its wire dict, got {scenario!r}"
    )


def run_scenario(scenario) -> SimReport:
    """Run one campaign scenario and return its report.

    Accepts a :class:`~repro.spec.scenario.ScenarioSpec` or its wire
    dict — a thin forwarder onto the one resolution path,
    ``simulate(ScenarioSpec)``.
    """
    return simulate(_as_spec(scenario))


def _record(spec: ScenarioSpec, report: SimReport) -> dict:
    return {
        "hash": spec.digest,
        "scenario": spec.to_spec(),
        "report": report.to_dict(),
    }


def _group_reports(specs: list[ScenarioSpec]) -> list[SimReport]:
    """Run one batch-compatible scenario group.

    Single-scenario groups take the sequential path; larger groups run
    as one :func:`~repro.sim.batch.simulate_batch` call.  Either way the
    reports are bit-identical (wall-clock ``elapsed`` aside), so nothing
    the aggregates consume depends on the grouping.
    """
    if len(specs) == 1:
        return [run_scenario(specs[0])]
    return simulate_batch(specs)


def _run_group(specs: list[ScenarioSpec]) -> list[dict]:
    """Pool task (pickled-record path): a scenario group → store records."""
    return [
        _record(s, rep) for s, rep in zip(specs, _group_reports(specs))
    ]


# -- shared-memory result path ---------------------------------------------


def _write_row(row: np.ndarray, report: SimReport) -> None:
    """Serialize one report's numeric fields into a float64 matrix row.

    Integer counters must survive the float64 trip exactly; they sit far
    below 2**53 in any realistic run, but a value that would round is a
    loud error here rather than a silently corrupted store.
    """
    for k, field in enumerate(_SHM_FIELDS):
        value = getattr(report, field)
        row[k] = value
        if field in _SHM_INT_FIELDS and int(row[k]) != value:
            raise ReproError(
                f"report field {field}={value} does not round-trip "
                "through the shared-memory buffer; rerun with "
                "zero_copy=False"
            )
    row[len(_SHM_FIELDS):] = report.stage_utilization


def _report_from_row(spec: ScenarioSpec, row: np.ndarray) -> SimReport:
    """Rebuild a report from its shared-memory row plus its spec.

    Counters round-trip exactly (they sit far below 2**53) and the
    latency summaries / utilizations / ``elapsed`` are float64 on both
    sides, so the result is bit-identical to the worker's report.  The
    descriptive fields never crossed the pipe: the label, policy and
    traffic description are recomputed from the spec — deterministic
    functions of it, which is what makes the zero-copy path safe.
    """
    values = {
        field: (
            int(value) if field in _SHM_INT_FIELDS else float(value)
        )
        for field, value in zip(_SHM_FIELDS, row)
    }
    return SimReport(
        network=spec.label,
        policy=spec.sim.policy,
        traffic=spec.traffic.resolve().describe(),
        rate=spec.traffic.rate,
        stage_utilization=tuple(
            float(u) for u in row[len(_SHM_FIELDS):]
        ),
        **values,
    )


def _decode_payload(specs: list[ScenarioSpec], payload) -> list[dict]:
    """Turn a pool result payload into store records.

    A zero-copy ``("shm", name, rows, cols)`` payload is read out of
    its shared-memory segment (then unlinked); a pickled payload is
    already the record list.
    """
    if isinstance(payload, tuple) and payload[0] == "shm":
        from multiprocessing import shared_memory

        _, name, rows, cols = payload
        shm = shared_memory.SharedMemory(name=name)
        try:
            mat = np.ndarray(
                (rows, cols), dtype=np.float64, buffer=shm.buf
            ).copy()
        finally:
            shm.close()
            shm.unlink()
        return [
            _record(s, _report_from_row(s, row))
            for s, row in zip(specs, mat)
        ]
    return payload


def _run_group_shm(task) -> tuple:
    """Pool task: run a scenario group, return results zero-copy.

    Exceptions cross the process boundary as
    :class:`~repro.campaign.errors.RemoteTaskError` carrying the
    *formatted* child traceback — pickling through the pool's result
    pipe strips ``__traceback__``, so without the wrap an abort-mode
    failure would surface only the parent's re-raise frame.

    With ``use_shm`` the worker allocates one shared-memory metric
    buffer sized to the group, writes every numeric report field into it
    and returns only ``("shm", name, rows, cols)`` — the records
    themselves never cross the pipe, and at most a handful of segments
    exist at any moment (one per in-flight result, not one per task).
    The parent reads and unlinks the segment; parent and workers share
    one resource-tracker process (fork inherits it, spawn passes its fd),
    so the single create-register / unlink-unregister pair balances and
    crash leftovers are swept at interpreter exit.  ``use_shm=False``
    degrades to the classic pickled-record payload.
    """
    try:
        return _run_group_shm_inner(task)
    except RemoteTaskError:
        raise
    except Exception as exc:
        raise RemoteTaskError.from_exception(exc) from exc


def _run_group_shm_inner(task) -> tuple:
    idx, specs, use_shm, dispatch_ts = task
    t0 = time.perf_counter()
    if obs.enabled() and dispatch_ts is not None:
        metrics().histogram("campaign.queue_wait_s").observe(
            # Queue-wait telemetry spans two processes, so only the
            # shared wall clock can measure it; the value feeds a
            # histogram, never a result or a digest.
            # repro: noqa[RPR003] — cross-process wall-clock telemetry
            max(0.0, time.time() - dispatch_ts)
        )
    before = compile_cache_info()
    with obs.span("group", scenarios=len(specs)):
        reports = _group_reports(specs)
    after = compile_cache_info()
    delta = (
        after["hits"] - before["hits"],
        after["misses"] - before["misses"],
    )
    tele = _telemetry(len(specs), time.perf_counter() - t0)
    if not use_shm:
        return (
            idx,
            [_record(s, r) for s, r in zip(specs, reports)],
            delta,
            tele,
        )
    from multiprocessing import shared_memory

    cols = len(_SHM_FIELDS) + reports[0].n_stages
    rows = len(specs)
    shm = shared_memory.SharedMemory(create=True, size=rows * cols * 8)
    try:
        mat = np.ndarray((rows, cols), dtype=np.float64, buffer=shm.buf)
        for i, report in enumerate(reports):
            _write_row(mat[i], report)
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    shm.close()
    return idx, ("shm", shm.name, rows, cols), delta, tele


def _note_group(n_scenarios: int, busy_s: float) -> None:
    """Fold one finished group into the process's metric registry."""
    m = metrics()
    m.counter("campaign.groups").add()
    m.counter("campaign.scenarios").add(n_scenarios)
    m.histogram("campaign.group_busy_s").observe(busy_s)


def _telemetry(n_scenarios: int, busy_s: float) -> dict:
    """One group task's telemetry payload for the pool's result path.

    Always carries the liveness triple (pid, busy seconds, scenario
    count) — a few dozen bytes feeding the parent's per-worker series
    and heartbeat.  Span events and the drained metrics snapshot ride
    along only while a tracer is active, so an untraced sweep ships no
    event payload through the pipe.  Draining keeps worker memory
    bounded: events accumulate only between tasks.
    """
    if not obs.enabled():
        return {
            "pid": os.getpid(),
            "busy_s": busy_s,
            "scenarios": n_scenarios,
            "events": (),
            "metrics": None,
        }
    _note_group(n_scenarios, busy_s)
    tr = obs.active()
    return {
        "pid": os.getpid(),
        "busy_s": busy_s,
        "scenarios": n_scenarios,
        "events": tr.drain() if tr.path is None else [],
        "metrics": metrics().drain(),
    }


def _worker_init(
    cache_max: int | None, warm_numba: bool, traced: bool = False
) -> None:
    """Pool initializer: install telemetry, size the cache, pre-pay JIT.

    The tracer (when the parent traces) comes first so the initializer's
    own ``warm_jit`` span is captured; it replaces any tracer inherited
    across ``fork`` — see :func:`repro.obs.trace.reset`.
    """
    if traced:
        obs.reset()
        obs.start(obs.Tracer())
    if cache_max is not None:
        ensure_compile_cache_min(cache_max)
    if warm_numba:
        warm_jit()


def _group_pending(
    pending: list[ScenarioSpec], batch: int
) -> list[list[ScenarioSpec]]:
    """Split the pending scenarios into batch-compatible group tasks.

    Groups follow first-appearance order of their keys (deterministic:
    expansion order is fixed) and are chunked to at most ``batch``
    scenarios so one task never grows an unbounded state slab.
    """
    groups: "OrderedDict[str, list[ScenarioSpec]]" = OrderedDict()
    for spec in pending:
        groups.setdefault(spec.group_key(), []).append(spec)
    tasks: list[list[ScenarioSpec]] = []
    for specs in groups.values():
        for i in range(0, len(specs), batch):
            tasks.append(specs[i : i + batch])
    return tasks


def run_campaign(
    spec: CampaignSpec,
    store_path: str | Path,
    *,
    workers: int = 1,
    batch: int = 16,
    resume: bool = False,
    base_dir: str | Path | None = None,
    progress: Callable[[dict, int, int], None] | None = None,
    backend: str | None = None,
    zero_copy: bool | None = None,
    heartbeat: float | None = None,
    task_timeout: float | None = None,
    retries: int = 2,
    on_error: str = "quarantine",
    retry_backoff: float = 0.25,
    chaos: ChaosSpec | str | None = None,
    supervised: bool = True,
) -> dict:
    """Run (or resume) a full campaign sweep into a result store.

    Parameters
    ----------
    spec:
        The declarative grid to expand.
    store_path:
        The JSONL result store; must not already hold records unless
        ``resume=True``.
    workers:
        Pool size; ``1`` runs inline in the calling process.  Pool
        workers inherit plugin-registered networks/traffic patterns on
        ``fork`` platforms (Linux); under the ``spawn`` start method
        (macOS/Windows default) workers re-import your main module, so
        keep ``@register_network``/``@register_traffic`` decorators at
        module top level — or use ``workers=1``.
    batch:
        Maximum scenarios fused into one ``simulate_batch`` call
        (grouped by topology, cycles, policy, drain and fault sample).
        ``1`` disables batching and dispatches per scenario.
    resume:
        Skip scenarios whose digests the store already holds — the
        crash-recovery path, a no-op when the store is complete.
    base_dir:
        Anchor for relative file-topology paths (see
        :func:`~repro.campaign.spec.expand_scenarios`).
    progress:
        Optional callback ``(record, n_done, n_total)`` invoked after
        each scenario is stored; exceptions it raises abort the run
        (already-stored records stay on disk).
    backend:
        Kernel backend request applied to every scenario
        (``"auto"``/``"numpy"``/``"numba"``; ``None`` keeps the specs'
        own ``sim.backend``).  Execution hint only — digests, stores and
        reports are identical across backends.
    zero_copy:
        Return pool results through preallocated shared-memory metric
        buffers instead of pickled report records.  Default (``None``):
        enabled for ``workers > 1`` unless ``REPRO_CAMPAIGN_SHM=0``.
    heartbeat:
        Seconds between atomic-rename progress heartbeats written next
        to the store (``<stem>.heartbeat.json`` — see
        :mod:`repro.campaign.heartbeat`); ``0`` (or negative) disables
        them.  Default (``None``): the ``REPRO_CAMPAIGN_HEARTBEAT``
        environment variable, else 1 second.  Pure telemetry, exactly
        like tracing: the store is byte-identical with heartbeats on
        or off, and ``python -m repro campaign watch`` tails the file
        from any other process.
    task_timeout:
        Wall-clock seconds one group task may run before its worker is
        SIGKILL-ed and the task retried (``None`` disables hang
        detection).  Enforced with ``workers > 1``; inline runs cannot
        preempt themselves.
    retries:
        Transient-failure budget per scenario: a failed singleton task
        is re-executed up to this many extra times (exponential backoff
        with deterministic jitter) before degradation/quarantine.
    on_error:
        ``"quarantine"`` (default) records terminal failures — full
        remote traceback included — in the
        ``repro-campaign-quarantine`` sidecar next to the store and
        finishes the sweep; ``"abort"`` raises
        :class:`~repro.campaign.errors.RemoteTaskError` instead.
    retry_backoff:
        Base of the exponential backoff between retries, in seconds.
    chaos:
        A :class:`~repro.campaign.chaos.ChaosSpec` (or its spec
        string) injecting deterministic crash/hang/raise/slow faults
        inside workers — the test harness for everything above.
        Default (``None``): parsed from the ``REPRO_CHAOS``
        environment variable, which is off by default.  An execution
        hint: chaos never enters specs, digests or store bytes.
    supervised:
        ``False`` restores the bare ``Pool.imap_unordered`` dispatch
        with no fault tolerance (the overhead baseline; worker
        exceptions abort the run as ``RemoteTaskError``).

    Returns
    -------
    dict
        ``{"total": ..., "skipped": ..., "ran": ..., "store": ...,
        "compile_cache": {"hits": ..., "misses": ...}}`` — the sweep
        accounting, for logs and tests.  Supervised runs add
        ``"quarantined"`` (terminal failures this run),
        ``"quarantined_skipped"`` (previously quarantined scenarios
        skipped on resume), ``"quarantine"`` (the sidecar path) and a
        ``"faults"`` dict of supervisor event counters
        (retries/bisects/degraded/quarantined/timeouts/crashes/
        respawns).  The compile-cache counters
        aggregate over every worker.  When a :mod:`repro.obs` tracer is
        active, a ``"telemetry"`` key is added: the run's wall time, the
        parent-merged metrics snapshot and a per-worker series
        (groups/scenarios/busy seconds/utilization); the trace stream
        additionally receives every worker's spans, a campaign
        :class:`~repro.obs.manifest.RunManifest` and the final metrics
        snapshot.  Telemetry never changes the store: traced and
        untraced sweeps produce identical records.
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if batch < 1:
        raise ReproError(f"batch must be >= 1, got {batch}")
    scenarios = expand_scenarios(spec, base_dir=base_dir)
    if backend is not None:
        resolve_backend(backend)  # fail fast on bad/unavailable names
        scenarios = [
            replace(s, sim=replace(s.sim, backend=backend))
            for s in scenarios
        ]
    if isinstance(chaos, str):
        chaos = parse_chaos(chaos)
    elif chaos is None:
        chaos = chaos_from_env()
    store = ResultStore(store_path)
    qstore = QuarantineStore(quarantine_path(store.path))
    done: set[str] = set()
    if store.exists() and len(store) > 0:
        if not resume:
            raise ReproError(
                f"store {store.path} already holds results; pass "
                "resume=True to continue it or choose a fresh path"
            )
        done = store.hashes()
    quarantined_prior: set[str] = set()
    if resume and qstore.exists():
        quarantined_prior = qstore.hashes() - done
    pending = [
        s for s in scenarios
        if s.digest not in done and s.digest not in quarantined_prior
    ]
    skipped = sum(1 for s in scenarios if s.digest in done)
    quarantined_skipped = len(scenarios) - len(pending) - skipped
    total = len(scenarios)
    n_done = skipped
    new_quarantined = 0
    stored_hashes = set(done)
    cache_hits = cache_misses = 0
    fault_stats = {key: 0 for key in sup.STAT_KEYS}
    hb_interval = (
        hb_default_interval() if heartbeat is None else heartbeat
    )
    hb: HeartbeatWriter | None = None
    # Validate the fault-tolerance knobs up front (fail before work).
    sup_cfg = sup.SupervisorConfig(
        task_timeout=task_timeout,
        retries=retries,
        backoff_base=retry_backoff,
        on_error=on_error,
    )

    def _store(record: dict) -> None:
        nonlocal n_done
        if record["hash"] in stored_hashes:
            # Attempt-independent results: a retried/bisected task may
            # recompute a scenario another attempt already delivered.
            return
        stored_hashes.add(record["hash"])
        store.append(record["hash"], record["scenario"], record["report"])
        n_done += 1
        if progress is not None:
            progress(record, n_done, total)
        if hb is not None:
            hb.beat(n_done)

    def _on_failure(failure) -> None:
        nonlocal new_quarantined
        if on_error == "abort":
            first = (
                failure.message.splitlines()[0] if failure.message else ""
            )
            raise RemoteTaskError(
                f"scenario {failure.hash} failed after "
                f"{failure.attempts} attempt(s) "
                f"[{failure.kind}: {failure.error_type}: {first}]",
                failure.traceback,
            )
        qstore.append(failure)
        new_quarantined += 1

    if not pending:
        if hb_interval > 0:
            HeartbeatWriter(
                store.path, total=total, skipped=skipped,
                workers=workers, batch=batch, interval=hb_interval,
                task_timeout=task_timeout,
            ).finish(n_done)
        return {
            "total": total, "skipped": skipped, "ran": 0,
            "quarantined": 0,
            "quarantined_skipped": quarantined_skipped,
            "quarantine": str(qstore.path) if qstore.exists() else None,
            "faults": fault_stats,
            "store": str(store.path),
            "compile_cache": {"hits": 0, "misses": 0},
        }
    tasks = _group_pending(pending, batch)
    # Size the compiled-network LRU to the sweep: distinct group keys
    # bound the distinct (topology, faults) compilations in play, and a
    # budget below that count would thrash on every group boundary.
    # Enlarge-only (capped at 64 groups' worth), so a larger budget the
    # user configured via REPRO_SIM_COMPILE_CACHE or
    # set_compile_cache_max always wins.
    cache_max = max(
        compile_cache_info()["maxsize"],
        min(64, len({s.group_key() for s in pending})),
    )
    resolved = resolve_backend(
        backend if backend is not None else pending[0].sim.backend
    )
    warm_numba = resolved == "numba"
    # Degradation target: retry once on the reference kernels when the
    # sweep runs the JIT backend.  A chaos spec with poison_numba
    # entries simulates exactly that failure mode, so it forces the
    # path on for numpy-only installs (where it is otherwise moot).
    degrade_backend = None
    if warm_numba or (chaos is not None and chaos.poison_numba):
        degrade_backend = "numpy"
    sup_cfg = sup.SupervisorConfig(
        task_timeout=task_timeout,
        retries=retries,
        backoff_base=retry_backoff,
        on_error=on_error,
        degrade_backend=degrade_backend,
    )
    if hb_interval > 0:
        hb = HeartbeatWriter(
            store.path, total=total, skipped=skipped, workers=workers,
            batch=batch, backend=resolved, interval=hb_interval,
            task_timeout=task_timeout,
        )
        hb.beat(n_done, force=True)

    # Telemetry (off unless a tracer is active): the whole dispatch is
    # one `campaign` span; workers ship their span events and metric
    # snapshots back piggybacked on the pool's result path, and the
    # parent folds them into its own stream plus a per-worker
    # utilization series for the summary.
    traced = obs.enabled()
    worker_series: "dict[int, dict]" = {}

    def _ingest(tele: dict | None) -> None:
        if tele is None:
            return
        if tele["events"]:
            tr = obs.active()
            if tr is not None:
                tr.ingest(tele["events"])
        if tele["metrics"] is not None:
            metrics().merge(tele["metrics"])
        _series(tele["pid"], tele["scenarios"], tele["busy_s"])

    def _series(pid: int, n_scenarios: int, busy_s: float) -> None:
        row = worker_series.setdefault(
            pid, {"groups": 0, "scenarios": 0, "busy_s": 0.0}
        )
        row["groups"] += 1
        row["scenarios"] += n_scenarios
        row["busy_s"] += busy_s
        if hb is not None:
            hb.note_worker(pid, n_scenarios, busy_s)

    _log.debug(
        "dispatching %d group task(s) (%d scenario(s)) over %d worker(s), "
        "backend=%s",
        len(tasks), len(pending), workers, resolved,
    )
    t_run0 = time.perf_counter()
    with obs.span(
        "campaign", total=total, skipped=skipped,
        workers=workers, batch=batch, backend=resolved,
    ) as root:
        if workers == 1:
            ensure_compile_cache_min(cache_max)
            before = compile_cache_info()

            def _execute_inline(task: "sup.Task") -> list[dict]:
                if chaos:
                    chaos.apply(
                        task.digests(), task.attempt,
                        backend=task.backend_override,
                    )
                specs = list(task.specs)
                if task.backend_override is not None:
                    specs = [
                        replace(
                            s,
                            sim=replace(
                                s.sim, backend=task.backend_override
                            ),
                        )
                        for s in specs
                    ]
                t0 = time.perf_counter()
                with obs.span("group", scenarios=len(specs)):
                    records = _run_group(specs)
                busy = time.perf_counter() - t0
                if traced:
                    _note_group(len(specs), busy)
                _series(os.getpid(), len(specs), busy)
                return records

            def _on_result_inline(task, records) -> None:
                with obs.span("store", scenarios=len(records)):
                    for record in records:
                        _store(record)

            fault_stats = sup.run_inline(
                tasks,
                cfg=sup_cfg,
                execute=_execute_inline,
                on_result=_on_result_inline,
                on_failure=_on_failure,
            )
            after = compile_cache_info()
            cache_hits = after["hits"] - before["hits"]
            cache_misses = after["misses"] - before["misses"]
        elif supervised:
            if zero_copy is None:
                zero_copy = os.environ.get(SHM_ENV, "1").strip() != "0"
            if zero_copy:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()

            def _on_result_pool(task, payload, delta, tele) -> None:
                nonlocal cache_hits, cache_misses
                cache_hits += delta[0]
                cache_misses += delta[1]
                _ingest(tele)
                records = _decode_payload(list(task.specs), payload)
                with obs.span("store", scenarios=len(records)):
                    for record in records:
                        _store(record)

            def _on_dispatch(pid, task) -> None:
                if hb is not None:
                    hb.note_dispatch(pid)

            def _on_tick() -> None:
                if hb is not None:
                    hb.beat(n_done)

            fault_stats = sup.run_supervised(
                tasks,
                workers=workers,
                cfg=sup_cfg,
                init_args=(cache_max, warm_numba, traced),
                chaos=chaos,
                use_shm=zero_copy,
                dispatch_ts_factory=(
                    (lambda: time.time()) if traced else (lambda: None)
                ),
                on_result=_on_result_pool,
                on_failure=_on_failure,
                on_dispatch=_on_dispatch,
                on_tick=_on_tick,
            )
        else:
            # Legacy direct-pool dispatch: no timeouts, no retries, no
            # quarantine — a worker failure propagates (as a
            # RemoteTaskError carrying the child traceback) and a
            # crashed worker breaks the pool.  Kept as the supervisor's
            # overhead baseline (bench_campaign) and escape hatch.
            if zero_copy is None:
                zero_copy = os.environ.get(SHM_ENV, "1").strip() != "0"
            if zero_copy:
                # Start the resource tracker BEFORE the pool forks:
                # workers then inherit its fd and register their
                # segments with the one shared tracker, where the
                # parent's unlink balances the books.  Forked without
                # it, every worker would lazily spawn a private tracker
                # that warns about (already-unlinked) "leaked" segments
                # at shutdown.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            dispatch_ts = time.time() if traced else None
            args = [
                (i, specs, zero_copy, dispatch_ts)
                for i, specs in enumerate(tasks)
            ]
            # Group tasks are heavy (a whole simulate_batch slab), so
            # chunked dispatch buys nothing — and on the zero-copy path
            # a chunk would hold every segment it created until the last
            # task finishes, instead of one per in-flight result.
            chunksize = (
                1 if zero_copy else max(1, len(tasks) // (workers * 4))
            )
            with multiprocessing.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(cache_max, warm_numba, traced),
            ) as pool:
                for idx, payload, delta, tele in pool.imap_unordered(
                    _run_group_shm, args, chunksize=chunksize
                ):
                    cache_hits += delta[0]
                    cache_misses += delta[1]
                    _ingest(tele)
                    records = _decode_payload(tasks[idx], payload)
                    with obs.span("store", scenarios=len(records)):
                        for record in records:
                            _store(record)
    if hb is not None:
        hb.finish(n_done)
    if new_quarantined:
        _log.warning(
            "%d scenario(s) quarantined -> %s (inspect with "
            "`python -m repro campaign quarantine --store %s`)",
            new_quarantined, qstore.path, store.path,
        )
    summary = {
        "total": total, "skipped": skipped,
        "ran": n_done - skipped,
        "quarantined": new_quarantined,
        "quarantined_skipped": quarantined_skipped,
        "quarantine": str(qstore.path) if qstore.exists() else None,
        "faults": fault_stats,
        "store": str(store.path),
        "compile_cache": {"hits": cache_hits, "misses": cache_misses},
    }
    if traced:
        wall = time.perf_counter() - t_run0
        summary["telemetry"] = {
            "wall_s": wall,
            "workers": {
                str(pid): {
                    **row,
                    "utilization": (
                        row["busy_s"] / wall if wall > 0 else 0.0
                    ),
                }
                for pid, row in sorted(worker_series.items())
            },
            "metrics": metrics().snapshot(),
        }
        tr = obs.active()
        tr.emit_manifest(
            RunManifest.collect(
                "campaign",
                [s.digest for s in scenarios],
                backend=resolved,
                timings={"total": root.dur},
                workers=workers,
                batch=batch,
                store=str(store.path),
            )
        )
        tr.emit_metrics(metrics().snapshot())
    return summary
