"""Fan a campaign's scenarios out over a ``multiprocessing`` worker pool.

The parent process never ships network objects: a worker receives one
scenario dict (a few hundred bytes), rebuilds the topology from the
catalog or the referenced ``repro-midigraph`` file, rebuilds the traffic
pattern and fault set from their specs, runs :func:`repro.sim.simulate`
and sends the report dict back.  The parent streams every finished record
straight into the :class:`~repro.campaign.store.ResultStore`, so progress
survives a kill at any point and ``resume=True`` re-runs only the missing
scenarios.

``workers=1`` runs inline in the parent (no pool, easiest to debug and to
interrupt deterministically in tests); ``workers>1`` uses
``Pool.imap_unordered`` — completion order is nondeterministic, results
are not: every scenario's report is a pure function of its dict.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.core.errors import ReproError
from repro.campaign.spec import CampaignSpec, Scenario, expand_scenarios
from repro.campaign.store import ResultStore
from repro.networks.catalog import build_network
from repro.sim.engine import simulate
from repro.sim.faults import FaultSet
from repro.sim.metrics import SimReport
from repro.sim.traffic import traffic_from_spec

__all__ = ["run_campaign", "run_scenario"]


def _build_topology(doc: Mapping):
    """Materialize a scenario's topology entry into a network."""
    if doc["kind"] == "catalog":
        return build_network(doc["name"], int(doc["n"]))
    if doc["kind"] == "file":
        import hashlib

        from repro.io import loads_network

        path = Path(doc["path"])
        text = path.read_text(encoding="utf-8")
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        if doc.get("digest") not in (None, digest):
            raise ReproError(
                f"topology file {path} changed since the campaign was "
                f"expanded (digest {digest} != {doc['digest']})"
            )
        return loads_network(text)
    raise ReproError(f"unknown topology kind {doc.get('kind')!r}")


def run_scenario(scenario: Mapping | Scenario) -> SimReport:
    """Run one campaign scenario and return its report.

    Accepts a :class:`~repro.campaign.spec.Scenario` or its dict form —
    this is the function the pool workers execute, and the single place
    where scenario dicts become simulations.
    """
    doc = scenario.to_dict() if isinstance(scenario, Scenario) else scenario
    net = _build_topology(doc["topology"])
    traffic = traffic_from_spec(doc["traffic"])
    faults = None
    if doc["fault_cells"] or doc["fault_links"]:
        faults = FaultSet.random(
            np.random.default_rng(doc["fault_seed"]),
            net.n_stages,
            net.size,
            n_dead_cells=doc["fault_cells"],
            n_dead_links=doc["fault_links"],
        )
    return simulate(
        net,
        traffic,
        cycles=doc["cycles"],
        policy=doc["policy"],
        seed=doc["seed"],
        faults=faults,
        drain=doc["drain"],
        network_name=doc["topology"]["label"],
    )


def _run_record(doc: dict) -> dict:
    """Pool task: scenario dict → store record dict."""
    from repro.campaign.spec import scenario_hash

    report = run_scenario(doc)
    return {
        "hash": scenario_hash(doc),
        "scenario": doc,
        "report": report.to_dict(),
    }


def run_campaign(
    spec: CampaignSpec,
    store_path: str | Path,
    *,
    workers: int = 1,
    resume: bool = False,
    base_dir: str | Path | None = None,
    progress: Callable[[dict, int, int], None] | None = None,
) -> dict:
    """Run (or resume) a full campaign sweep into a result store.

    Parameters
    ----------
    spec:
        The declarative grid to expand.
    store_path:
        The JSONL result store; must not already hold records unless
        ``resume=True``.
    workers:
        Pool size; ``1`` runs inline in the calling process.
    resume:
        Skip scenarios whose hashes the store already holds — the
        crash-recovery path, a no-op when the store is complete.
    base_dir:
        Anchor for relative file-topology paths (see
        :func:`~repro.campaign.spec.expand_scenarios`).
    progress:
        Optional callback ``(record, n_done, n_total)`` invoked after
        each scenario is stored; exceptions it raises abort the run
        (already-stored records stay on disk).

    Returns
    -------
    dict
        ``{"total": ..., "skipped": ..., "ran": ..., "store": ...}`` —
        the sweep accounting, for logs and tests.
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    scenarios = expand_scenarios(spec, base_dir=base_dir)
    store = ResultStore(store_path)
    done: set[str] = set()
    if store.exists() and len(store) > 0:
        if not resume:
            raise ReproError(
                f"store {store.path} already holds results; pass "
                "resume=True to continue it or choose a fresh path"
            )
        done = store.hashes()
    pending = [s.to_dict() for s in scenarios if s.hash not in done]
    skipped = len(scenarios) - len(pending)
    total = len(scenarios)
    n_done = skipped

    def _store(record: dict) -> None:
        nonlocal n_done
        store.append(record["hash"], record["scenario"], record["report"])
        n_done += 1
        if progress is not None:
            progress(record, n_done, total)

    if not pending:
        return {
            "total": total, "skipped": skipped, "ran": 0,
            "store": str(store.path),
        }
    if workers == 1:
        for doc in pending:
            _store(_run_record(doc))
    else:
        chunksize = max(1, len(pending) // (workers * 4))
        with multiprocessing.Pool(processes=workers) as pool:
            for record in pool.imap_unordered(
                _run_record, pending, chunksize=chunksize
            ):
                _store(record)
    return {
        "total": total, "skipped": skipped, "ran": len(pending),
        "store": str(store.path),
    }
