"""Fan a campaign's scenarios out over a ``multiprocessing`` worker pool.

The parent process never ships network objects: a worker receives
scenario dicts (a few hundred bytes each), rebuilds the topology from the
catalog or the referenced ``repro-midigraph`` file, rebuilds the traffic
pattern and fault set from their specs, runs the simulator and sends the
report dicts back.  The parent streams every finished record straight
into the :class:`~repro.campaign.store.ResultStore`, so progress survives
a kill at any point and ``resume=True`` re-runs only the missing
scenarios.

Two layers of batching keep the sweep hot:

* **Scenario groups.**  Pending scenarios are grouped by
  :func:`~repro.campaign.spec.scenario_group_key` — same topology,
  cycles, policy, drain and fault sample — and each group (up to
  ``batch`` scenarios) runs as one
  :func:`~repro.sim.batch.simulate_batch` call: one compiled network,
  one pass over the cycle loop, bit-identical per-scenario reports.
  ``batch=1`` recovers the per-scenario dispatch exactly.
* **Worker-local topology cache.**  ``_build_topology`` memoizes
  networks by catalog entry or content digest within each worker
  process, so a worker running many scenarios of one topology reads,
  hashes and constructs it once.

``workers=1`` runs inline in the parent (no pool, easiest to debug and to
interrupt deterministically in tests); ``workers>1`` uses
``Pool.imap_unordered`` — completion order is nondeterministic, results
are not: every scenario's report is a pure function of its dict.
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.core.errors import ReproError
from repro.campaign.spec import (
    CampaignSpec,
    Scenario,
    expand_scenarios,
    scenario_group_key,
    scenario_hash,
)
from repro.campaign.store import ResultStore
from repro.networks.catalog import build_network
from repro.sim.batch import BatchScenario, simulate_batch
from repro.sim.engine import simulate
from repro.sim.faults import FaultSet
from repro.sim.metrics import SimReport
from repro.sim.traffic import traffic_from_spec

__all__ = ["run_campaign", "run_scenario"]

# Per-process (hence per-worker) topology memo: catalog entries keyed by
# (name, n), file entries by content digest.  Bounded so huge sweeps
# over many saved files don't pin every network in worker memory.
_TOPOLOGY_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_TOPOLOGY_CACHE_MAX = 32


def _topology_cache_key(doc: Mapping) -> tuple | None:
    if doc["kind"] == "catalog":
        return ("catalog", doc["name"], int(doc["n"]))
    if doc["kind"] == "file" and doc.get("digest"):
        # Content-addressed: the digest pins the bytes, so the cache is
        # valid across path spellings and re-reads.
        return ("file", doc["digest"])
    return None  # un-pinned file entry: always re-read and re-verify


def _build_topology(doc: Mapping):
    """Materialize a scenario's topology entry into a network (memoized)."""
    key = _topology_cache_key(doc)
    if key is not None:
        net = _TOPOLOGY_CACHE.get(key)
        if net is not None:
            _TOPOLOGY_CACHE.move_to_end(key)
            return net
    if doc["kind"] == "catalog":
        net = build_network(doc["name"], int(doc["n"]))
    elif doc["kind"] == "file":
        import hashlib

        from repro.io import loads_network

        path = Path(doc["path"])
        text = path.read_text(encoding="utf-8")
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        if doc.get("digest") not in (None, digest):
            raise ReproError(
                f"topology file {path} changed since the campaign was "
                f"expanded (digest {digest} != {doc['digest']})"
            )
        net = loads_network(text)
    else:
        raise ReproError(f"unknown topology kind {doc.get('kind')!r}")
    if key is not None:
        _TOPOLOGY_CACHE[key] = net
        if len(_TOPOLOGY_CACHE) > _TOPOLOGY_CACHE_MAX:
            _TOPOLOGY_CACHE.popitem(last=False)
    return net


def _build_faults(doc: Mapping, net) -> FaultSet | None:
    if not (doc["fault_cells"] or doc["fault_links"]):
        return None
    return FaultSet.random(
        np.random.default_rng(doc["fault_seed"]),
        net.n_stages,
        net.size,
        n_dead_cells=doc["fault_cells"],
        n_dead_links=doc["fault_links"],
    )


def run_scenario(scenario: Mapping | Scenario) -> SimReport:
    """Run one campaign scenario and return its report.

    Accepts a :class:`~repro.campaign.spec.Scenario` or its dict form —
    this is the function the pool workers execute for singleton groups,
    and the single place where a scenario dict becomes a sequential
    simulation.
    """
    doc = scenario.to_dict() if isinstance(scenario, Scenario) else scenario
    net = _build_topology(doc["topology"])
    return simulate(
        net,
        traffic_from_spec(doc["traffic"]),
        cycles=doc["cycles"],
        policy=doc["policy"],
        seed=doc["seed"],
        faults=_build_faults(doc, net),
        drain=doc["drain"],
        network_name=doc["topology"]["label"],
    )


def _record(doc: Mapping, report: SimReport) -> dict:
    return {
        "hash": scenario_hash(doc),
        "scenario": doc,
        "report": report.to_dict(),
    }


def _run_group(docs: list[dict]) -> list[dict]:
    """Pool task: a batch-compatible scenario group → store records.

    Single-scenario groups take the sequential path; larger groups run
    as one :func:`~repro.sim.batch.simulate_batch` call.  Either way the
    reports are bit-identical (wall-clock ``elapsed`` aside), so nothing
    the aggregates consume depends on the grouping.
    """
    if len(docs) == 1:
        return [_record(docs[0], run_scenario(docs[0]))]
    head = docs[0]
    net = _build_topology(head["topology"])
    reports = simulate_batch(
        net,
        [
            BatchScenario(
                traffic=traffic_from_spec(doc["traffic"]),
                seed=doc["seed"],
                network_name=doc["topology"]["label"],
            )
            for doc in docs
        ],
        cycles=head["cycles"],
        policy=head["policy"],
        faults=_build_faults(head, net),
        drain=head["drain"],
    )
    return [_record(doc, rep) for doc, rep in zip(docs, reports)]


def _group_pending(pending: list[dict], batch: int) -> list[list[dict]]:
    """Split the pending scenarios into batch-compatible group tasks.

    Groups follow first-appearance order of their keys (deterministic:
    expansion order is fixed) and are chunked to at most ``batch``
    scenarios so one task never grows an unbounded state slab.
    """
    groups: "OrderedDict[str, list[dict]]" = OrderedDict()
    for doc in pending:
        groups.setdefault(scenario_group_key(doc), []).append(doc)
    tasks: list[list[dict]] = []
    for docs in groups.values():
        for i in range(0, len(docs), batch):
            tasks.append(docs[i : i + batch])
    return tasks


def run_campaign(
    spec: CampaignSpec,
    store_path: str | Path,
    *,
    workers: int = 1,
    batch: int = 16,
    resume: bool = False,
    base_dir: str | Path | None = None,
    progress: Callable[[dict, int, int], None] | None = None,
) -> dict:
    """Run (or resume) a full campaign sweep into a result store.

    Parameters
    ----------
    spec:
        The declarative grid to expand.
    store_path:
        The JSONL result store; must not already hold records unless
        ``resume=True``.
    workers:
        Pool size; ``1`` runs inline in the calling process.
    batch:
        Maximum scenarios fused into one ``simulate_batch`` call
        (grouped by topology, cycles, policy, drain and fault sample).
        ``1`` disables batching and dispatches per scenario.
    resume:
        Skip scenarios whose hashes the store already holds — the
        crash-recovery path, a no-op when the store is complete.
    base_dir:
        Anchor for relative file-topology paths (see
        :func:`~repro.campaign.spec.expand_scenarios`).
    progress:
        Optional callback ``(record, n_done, n_total)`` invoked after
        each scenario is stored; exceptions it raises abort the run
        (already-stored records stay on disk).

    Returns
    -------
    dict
        ``{"total": ..., "skipped": ..., "ran": ..., "store": ...}`` —
        the sweep accounting, for logs and tests.
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if batch < 1:
        raise ReproError(f"batch must be >= 1, got {batch}")
    scenarios = expand_scenarios(spec, base_dir=base_dir)
    store = ResultStore(store_path)
    done: set[str] = set()
    if store.exists() and len(store) > 0:
        if not resume:
            raise ReproError(
                f"store {store.path} already holds results; pass "
                "resume=True to continue it or choose a fresh path"
            )
        done = store.hashes()
    pending = [s.to_dict() for s in scenarios if s.hash not in done]
    skipped = len(scenarios) - len(pending)
    total = len(scenarios)
    n_done = skipped

    def _store(record: dict) -> None:
        nonlocal n_done
        store.append(record["hash"], record["scenario"], record["report"])
        n_done += 1
        if progress is not None:
            progress(record, n_done, total)

    if not pending:
        return {
            "total": total, "skipped": skipped, "ran": 0,
            "store": str(store.path),
        }
    tasks = _group_pending(pending, batch)
    if workers == 1:
        for task in tasks:
            for record in _run_group(task):
                _store(record)
    else:
        chunksize = max(1, len(tasks) // (workers * 4))
        with multiprocessing.Pool(processes=workers) as pool:
            for records in pool.imap_unordered(
                _run_group, tasks, chunksize=chunksize
            ):
                for record in records:
                    _store(record)
    return {
        "total": total, "skipped": skipped, "ran": len(pending),
        "store": str(store.path),
    }
