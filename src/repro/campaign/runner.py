"""Fan a campaign's scenarios out over a ``multiprocessing`` worker pool.

The parent process never ships network objects: a worker receives frozen
:class:`~repro.spec.scenario.ScenarioSpec` values (a few hundred bytes
each), resolves them through the registries — rebuilding the topology
from the catalog or the referenced ``repro-midigraph`` file, the traffic
pattern and the fault sample — runs the simulator and sends the report
dicts back.  The parent streams every finished record straight into the
:class:`~repro.campaign.store.ResultStore`, so progress survives a kill
at any point and ``resume=True`` re-runs only the missing scenarios.

Two layers of batching keep the sweep hot:

* **Scenario groups.**  Pending scenarios are grouped by
  :meth:`~repro.spec.scenario.ScenarioSpec.group_key` — same topology,
  cycles, policy, drain and fault sample — and each group (up to
  ``batch`` scenarios) runs as one
  :func:`~repro.sim.batch.simulate_batch` call: one compiled network,
  one pass over the cycle loop, bit-identical per-scenario reports.
  ``batch=1`` recovers the per-scenario dispatch exactly.
* **Worker-local topology cache.**  Network resolution is memoized per
  process (:meth:`~repro.spec.scenario.NetworkSpec.resolve` keys catalog
  entries by name + parameters and file entries by content digest), so
  a worker running many scenarios of one topology reads, hashes and
  constructs it once.

``workers=1`` runs inline in the parent (no pool, easiest to debug and to
interrupt deterministically in tests); ``workers>1`` uses
``Pool.imap_unordered`` — completion order is nondeterministic, results
are not: every scenario's report is a pure function of its spec.
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Mapping

from repro.core.errors import ReproError
from repro.campaign.spec import CampaignSpec, expand_scenarios
from repro.campaign.store import ResultStore
from repro.sim.batch import simulate_batch
from repro.sim.engine import simulate
from repro.sim.metrics import SimReport
from repro.spec.scenario import ScenarioSpec

__all__ = ["run_campaign", "run_scenario"]


def _as_spec(scenario) -> ScenarioSpec:
    """Coerce any accepted scenario form into a :class:`ScenarioSpec`."""
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if isinstance(scenario, Mapping):
        return ScenarioSpec.from_spec(scenario)
    spec = getattr(scenario, "spec", None)  # deprecated Scenario shim
    if isinstance(spec, ScenarioSpec):
        return spec
    raise ReproError(
        f"expected a ScenarioSpec or its wire dict, got {scenario!r}"
    )


def run_scenario(scenario) -> SimReport:
    """Run one campaign scenario and return its report.

    Accepts a :class:`~repro.spec.scenario.ScenarioSpec` or its wire
    dict — a thin forwarder onto the one resolution path,
    ``simulate(ScenarioSpec)``.
    """
    return simulate(_as_spec(scenario))


def _record(spec: ScenarioSpec, report: SimReport) -> dict:
    return {
        "hash": spec.digest,
        "scenario": spec.to_spec(),
        "report": report.to_dict(),
    }


def _run_group(specs: list[ScenarioSpec]) -> list[dict]:
    """Pool task: a batch-compatible scenario group → store records.

    Single-scenario groups take the sequential path; larger groups run
    as one :func:`~repro.sim.batch.simulate_batch` call.  Either way the
    reports are bit-identical (wall-clock ``elapsed`` aside), so nothing
    the aggregates consume depends on the grouping.
    """
    if len(specs) == 1:
        return [_record(specs[0], run_scenario(specs[0]))]
    reports = simulate_batch(specs)
    return [_record(s, rep) for s, rep in zip(specs, reports)]


def _group_pending(
    pending: list[ScenarioSpec], batch: int
) -> list[list[ScenarioSpec]]:
    """Split the pending scenarios into batch-compatible group tasks.

    Groups follow first-appearance order of their keys (deterministic:
    expansion order is fixed) and are chunked to at most ``batch``
    scenarios so one task never grows an unbounded state slab.
    """
    groups: "OrderedDict[str, list[ScenarioSpec]]" = OrderedDict()
    for spec in pending:
        groups.setdefault(spec.group_key(), []).append(spec)
    tasks: list[list[ScenarioSpec]] = []
    for specs in groups.values():
        for i in range(0, len(specs), batch):
            tasks.append(specs[i : i + batch])
    return tasks


def run_campaign(
    spec: CampaignSpec,
    store_path: str | Path,
    *,
    workers: int = 1,
    batch: int = 16,
    resume: bool = False,
    base_dir: str | Path | None = None,
    progress: Callable[[dict, int, int], None] | None = None,
) -> dict:
    """Run (or resume) a full campaign sweep into a result store.

    Parameters
    ----------
    spec:
        The declarative grid to expand.
    store_path:
        The JSONL result store; must not already hold records unless
        ``resume=True``.
    workers:
        Pool size; ``1`` runs inline in the calling process.  Pool
        workers inherit plugin-registered networks/traffic patterns on
        ``fork`` platforms (Linux); under the ``spawn`` start method
        (macOS/Windows default) workers re-import your main module, so
        keep ``@register_network``/``@register_traffic`` decorators at
        module top level — or use ``workers=1``.
    batch:
        Maximum scenarios fused into one ``simulate_batch`` call
        (grouped by topology, cycles, policy, drain and fault sample).
        ``1`` disables batching and dispatches per scenario.
    resume:
        Skip scenarios whose digests the store already holds — the
        crash-recovery path, a no-op when the store is complete.
    base_dir:
        Anchor for relative file-topology paths (see
        :func:`~repro.campaign.spec.expand_scenarios`).
    progress:
        Optional callback ``(record, n_done, n_total)`` invoked after
        each scenario is stored; exceptions it raises abort the run
        (already-stored records stay on disk).

    Returns
    -------
    dict
        ``{"total": ..., "skipped": ..., "ran": ..., "store": ...}`` —
        the sweep accounting, for logs and tests.
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if batch < 1:
        raise ReproError(f"batch must be >= 1, got {batch}")
    scenarios = expand_scenarios(spec, base_dir=base_dir)
    store = ResultStore(store_path)
    done: set[str] = set()
    if store.exists() and len(store) > 0:
        if not resume:
            raise ReproError(
                f"store {store.path} already holds results; pass "
                "resume=True to continue it or choose a fresh path"
            )
        done = store.hashes()
    pending = [s for s in scenarios if s.digest not in done]
    skipped = len(scenarios) - len(pending)
    total = len(scenarios)
    n_done = skipped

    def _store(record: dict) -> None:
        nonlocal n_done
        store.append(record["hash"], record["scenario"], record["report"])
        n_done += 1
        if progress is not None:
            progress(record, n_done, total)

    if not pending:
        return {
            "total": total, "skipped": skipped, "ran": 0,
            "store": str(store.path),
        }
    tasks = _group_pending(pending, batch)
    if workers == 1:
        for task in tasks:
            for record in _run_group(task):
                _store(record)
    else:
        chunksize = max(1, len(tasks) // (workers * 4))
        with multiprocessing.Pool(processes=workers) as pool:
            for records in pool.imap_unordered(
                _run_group, tasks, chunksize=chunksize
            ):
                for record in records:
                    _store(record)
    return {
        "total": total, "skipped": skipped, "ran": len(pending),
        "store": str(store.path),
    }
