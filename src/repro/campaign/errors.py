"""Structured campaign failures: remote tracebacks and the quarantine store.

A campaign worker dies three ways — it raises, it crashes (segfault /
OOM-kill / chaos ``SIGKILL``), or it hangs past the task timeout — and
every one of them used to be fatal to the whole sweep.  This module is
the vocabulary the supervisor uses to make them survivable:

* :class:`RemoteTaskError` — an exception that carries the *formatted*
  child traceback across the process boundary.  Pickling an exception
  through a pool strips its ``__traceback__``; wrapping preserves the
  child stack as text, so abort-mode failures are debuggable.
* :class:`TaskFailure` — the terminal record of one scenario that could
  not be completed: what failed, how (``raise``/``crash``/``hang``),
  after how many attempts, on which backends, with the full remote
  traceback when one exists.
* :class:`QuarantineStore` — the ``repro-campaign-quarantine`` JSONL
  sidecar next to the result store (``sweep.jsonl`` →
  ``sweep.quarantine.jsonl``).  Quarantined scenarios are skipped on
  ``--resume`` and listed / inspected / requeued by
  ``python -m repro campaign quarantine``.

The sidecar is diagnostic state, not result state: it never feeds
aggregation, and removing records from it (requeue) simply makes the
next ``--resume`` run those scenarios again.
"""

from __future__ import annotations

import json
import traceback as tb_module
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.core.errors import ReproError

__all__ = [
    "QUARANTINE_FORMAT",
    "QUARANTINE_VERSION",
    "QuarantineStore",
    "RemoteTaskError",
    "TaskFailure",
    "format_remote_traceback",
    "quarantine_path",
]

QUARANTINE_FORMAT = "repro-campaign-quarantine"
QUARANTINE_VERSION = 1

#: Failure kinds a task can die of.
FAILURE_KINDS = ("raise", "crash", "hang")


def format_remote_traceback(exc: BaseException) -> str:
    """The full formatted traceback of an exception, as one string."""
    return "".join(
        tb_module.format_exception(type(exc), exc, exc.__traceback__)
    )


class RemoteTaskError(ReproError):
    """A campaign task failed in a worker process.

    Carries the child's formatted traceback as
    :attr:`remote_traceback` — the text survives pickling through a
    pool result pipe, where the exception's own ``__traceback__`` does
    not.  ``str()`` includes it, so an abort-mode campaign failure
    prints the real failing frame, not the parent's re-raise site.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        self.remote_traceback = remote_traceback
        super().__init__(message)

    def __str__(self) -> str:
        message = self.args[0] if self.args else ""
        if not self.remote_traceback:
            return message
        return (
            f"{message}\n"
            "---- remote traceback (worker process) ----\n"
            f"{self.remote_traceback.rstrip()}"
        )

    def __reduce__(self):
        # Explicit two-arg reconstruction: the default reduce would
        # replay only ``args`` and drop the traceback attribute.
        message = self.args[0] if self.args else ""
        return (type(self), (message, self.remote_traceback))

    @classmethod
    def from_exception(
        cls, exc: BaseException, context: str = "campaign task failed"
    ) -> "RemoteTaskError":
        """Wrap a live exception, capturing its formatted traceback."""
        return cls(
            f"{context}: {type(exc).__name__}: {exc}",
            format_remote_traceback(exc),
        )


@dataclass(frozen=True)
class TaskFailure:
    """The terminal failure record of one quarantined scenario.

    Parameters mirror the quarantine sidecar's wire form: the scenario
    identity (``hash`` + wire ``scenario`` dict) plus the error evidence
    (kind, exception type/message, remote traceback, attempt count, the
    backends tried and the last worker pid seen holding the task).
    """

    hash: str
    scenario: Mapping
    kind: str  # "raise" | "crash" | "hang"
    error_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    backends: tuple = ()
    worker_pid: int | None = None
    ts: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ReproError(
                f"failure kind must be one of {FAILURE_KINDS}, "
                f"got {self.kind!r}"
            )

    def to_dict(self) -> dict:
        return {
            "hash": self.hash,
            "scenario": dict(self.scenario),
            "error": {
                "kind": self.kind,
                "type": self.error_type,
                "message": self.message,
                "traceback": self.traceback,
                "attempts": self.attempts,
                "backends": list(self.backends),
                "worker_pid": self.worker_pid,
                "ts": self.ts,
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "TaskFailure":
        err = doc["error"]
        return cls(
            hash=doc["hash"],
            scenario=dict(doc["scenario"]),
            kind=err["kind"],
            error_type=err["type"],
            message=err["message"],
            traceback=err.get("traceback", ""),
            attempts=err.get("attempts", 1),
            backends=tuple(err.get("backends", ())),
            worker_pid=err.get("worker_pid"),
            ts=err.get("ts"),
        )

    def summary(self) -> str:
        """One list line: hash, label, kind and the first message line."""
        label = "?"
        topo = self.scenario.get("topology")
        if isinstance(topo, Mapping):
            label = topo.get("label", "?")
        first = self.message.splitlines()[0] if self.message else ""
        return (
            f"{self.hash}  {label}  kind={self.kind}  "
            f"{self.error_type}: {first}  (attempts={self.attempts})"
        )


def quarantine_path(store_path: str | Path) -> Path:
    """The quarantine sidecar paired with a store."""
    store = Path(store_path)
    return store.with_name(store.stem + ".quarantine.jsonl")


class QuarantineStore:
    """The append-only JSONL sidecar of quarantined scenarios.

    Same shape discipline as the result store — a format header line
    followed by one JSON record per failure, flushed per append, torn
    final line tolerated — so a supervisor killed mid-quarantine loses
    at most the record being written.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def _ensure_header(self) -> None:
        if self.path.exists() and self.path.stat().st_size > 0:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "format": QUARANTINE_FORMAT, "version": QUARANTINE_VERSION,
        }
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")

    def append(self, failure: TaskFailure) -> None:
        """Append one terminal failure and flush it to disk."""
        self._ensure_header()
        line = json.dumps(failure.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    def records(self) -> Iterator[TaskFailure]:
        """Yield the quarantined failures, tolerating a torn tail line."""
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as err:
            raise ReproError(
                f"{self.path}: quarantine header is not valid JSON: {err}"
            ) from err
        if (
            not isinstance(header, dict)
            or header.get("format") != QUARANTINE_FORMAT
        ):
            raise ReproError(
                f"{self.path}: not a {QUARANTINE_FORMAT} document"
            )
        if header.get("version") != QUARANTINE_VERSION:
            raise ReproError(
                f"{self.path}: unsupported quarantine version "
                f"{header.get('version')!r}"
            )
        for i, line in enumerate(lines[1:], start=2):
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines):  # torn tail
                    return
                raise ReproError(
                    f"{self.path}: corrupt quarantine record on line {i}"
                ) from None
            yield TaskFailure.from_dict(doc)

    def verify(self) -> dict:
        """Schema-check every failure line, returning a corruption report.

        The quarantine half of ``campaign store verify --sidecars``:
        same report shape as
        :meth:`repro.campaign.store.ResultStore.verify` —
        ``{"path", "records", "bad": [{"line", "reason"}, …], "ok"}``
        plus ``"exists"`` and ``"torn_tail"``.  Unlike :meth:`records`
        this never raises on record-level corruption (only on a broken
        header).  A torn final line is *tolerated* — reported via
        ``torn_tail`` but not counted bad — matching the read-path
        semantics of :meth:`records` and the trace reader: a supervisor
        killed mid-append is expected wear, not corruption.
        """
        report = {
            "path": str(self.path),
            "exists": self.path.exists(),
            "records": 0,
            "bad": [],
            "torn_tail": False,
            "ok": True,
        }
        if not report["exists"]:
            return report
        with open(self.path, "r", encoding="utf-8") as fh:
            text = fh.read()
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return report
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as err:
            raise ReproError(
                f"{self.path}: quarantine header is not valid JSON: {err}"
            ) from err
        if (
            not isinstance(header, dict)
            or header.get("format") != QUARANTINE_FORMAT
        ):
            raise ReproError(
                f"{self.path}: not a {QUARANTINE_FORMAT} document"
            )
        if header.get("version") != QUARANTINE_VERSION:
            raise ReproError(
                f"{self.path}: unsupported quarantine version "
                f"{header.get('version')!r}"
            )
        for i, line in enumerate(lines[1:], start=2):
            reason = None
            doc = None
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines):  # torn tail: records() skips it too
                    report["torn_tail"] = True
                    break
                reason = "invalid JSON"
            if reason is None and (
                not isinstance(doc, dict)
                or any(k not in doc for k in ("hash", "scenario", "error"))
            ):
                reason = "missing record keys"
            if reason is None and (
                not isinstance(doc["error"], dict)
                or any(
                    k not in doc["error"] for k in ("kind", "type", "message")
                )
            ):
                reason = "missing error keys"
            if reason is None and doc["error"]["kind"] not in FAILURE_KINDS:
                reason = (
                    f"unknown failure kind {doc['error']['kind']!r}"
                )
            if reason is None:
                report["records"] += 1
            else:
                report["bad"].append({"line": i, "reason": reason})
        report["ok"] = not report["bad"]
        return report

    def hashes(self) -> set[str]:
        """Scenario hashes currently quarantined (the resume skip-set)."""
        return {failure.hash for failure in self.records()}

    def get(self, scenario_hash: str) -> TaskFailure | None:
        """The failure record of one hash (prefix match), or ``None``."""
        for failure in self.records():
            if failure.hash.startswith(scenario_hash):
                return failure
        return None

    def requeue(self, hashes: Iterable[str] | None = None) -> int:
        """Drop failures from the sidecar so ``--resume`` re-runs them.

        ``hashes`` limits the requeue to those scenarios (prefix match);
        ``None`` requeues everything.  Returns the number of records
        removed.  The rewrite is atomic (temp file + ``os.replace``).
        """
        import os

        if not self.path.exists():
            return 0
        prefixes = None if hashes is None else tuple(hashes)

        def _drop(failure: TaskFailure) -> bool:
            if prefixes is None:
                return True
            return any(failure.hash.startswith(p) for p in prefixes)

        kept = [f for f in self.records() if not _drop(f)]
        dropped = len(list(self.records())) - len(kept)
        if dropped == 0:
            return 0
        tmp = self.path.with_name(f".{self.path.name}.tmp")
        header = {
            "format": QUARANTINE_FORMAT, "version": QUARANTINE_VERSION,
        }
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for failure in kept:
                fh.write(json.dumps(failure.to_dict(), sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        return dropped

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def __repr__(self) -> str:
        return f"QuarantineStore({str(self.path)!r})"
