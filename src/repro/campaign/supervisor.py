"""Fault-tolerant supervision of campaign task execution.

The pre-supervisor runner fanned group tasks through a bare
``multiprocessing.Pool.imap_unordered``: one segfaulted worker broke
the whole pool, one hung numba compile stalled the iterator forever,
and one poison scenario aborted the run.  This module replaces that
loop with *managed* dispatch — the parent owns each worker process
individually and keeps the sweep alive through all three failure
modes:

* **Timeouts.**  Every in-flight task carries a wall-clock deadline
  (``task_timeout``).  A worker past its deadline is ``SIGKILL``-ed,
  respawned, and the task re-enters the queue as a ``hang`` failure.
* **Retries + respawn.**  Failed singleton tasks are retried up to
  ``retries`` times with exponential backoff and *deterministic*
  jitter (a pure function of the scenario digest and attempt — two
  identical runs back off identically).  Dead workers are respawned
  immediately; a crashed worker never takes the pool down.
* **Bisection.**  A failed multi-scenario group is split in half and
  both halves re-run, recursing until the failure is isolated to the
  single truly-poisonous scenario — the rest of the group's results
  are recomputed and kept.
* **Degradation.**  A singleton that exhausted its retries is retried
  once more on the reference numpy backend (when the sweep runs numba)
  before being declared poison — a JIT-specific failure degrades
  gracefully instead of quarantining a healthy scenario.
* **Quarantine or abort.**  Terminal failures go to the caller's
  ``on_failure`` hook: quarantine mode records them (with the full
  remote traceback) and finishes the sweep; abort mode raises a
  :class:`~repro.campaign.errors.RemoteTaskError`.

The engine is deliberately generic: it moves
:class:`~repro.spec.scenario.ScenarioSpec` tuples and opaque payloads,
while the runner supplies the execution body (via
:mod:`repro.campaign.runner`'s group executor, reused verbatim inside
:func:`_worker_main`) and the result/failure sinks.  Completion events
count into :data:`repro.obs.metrics` (``campaign.retries``,
``campaign.bisects``, ``campaign.degraded``, ``campaign.quarantined``,
``campaign.timeouts``, ``campaign.crashes``, ``campaign.respawns``)
whenever a tracer is active, and always into the returned stats dict.

Results are attempt-independent (a report is a pure function of its
spec), so the engine dedupes at the scenario-digest level: however many
times a task ran, raced a kill, or overlapped a bisected sibling, every
scenario is delivered to ``on_result`` exactly once.
"""

from __future__ import annotations

import hashlib
import os
import queue as queue_module
import signal
import time
from collections import deque
from dataclasses import dataclass, field, replace as dc_replace

import multiprocessing

from repro.core.errors import ReproError
from repro.campaign.chaos import ChaosSpec
from repro.campaign.errors import (
    RemoteTaskError,
    TaskFailure,
    format_remote_traceback,
)
from repro.obs import schema as obs_schema
from repro.obs import trace as obs
from repro.obs.log import get_logger
from repro.obs.metrics import metrics

__all__ = [
    "SupervisorConfig",
    "Task",
    "backoff_delay",
    "plan_recovery",
    "run_inline",
    "run_supervised",
]

_log = get_logger("campaign.supervisor")

_ON_ERROR = ("abort", "quarantine")

#: Max tasks in flight per supervised worker (1 running + the rest
#: queued worker-side).  Depth 2 hides the parent's dispatch round-trip
#: without letting one worker hoard the tail of the queue.
PREFETCH = 2

#: Supervisor bookkeeping keys returned in the stats dict.  Each key is
#: also a declared ``campaign.<event>`` counter, so the set lives in the
#: trace schema — one declaration for emit, consume, and lint.
STAT_KEYS = obs_schema.CAMPAIGN_EVENTS


@dataclass(frozen=True)
class SupervisorConfig:
    """The fault-tolerance policy of one campaign run.

    ``task_timeout=None`` disables hang detection (tasks may run
    forever); ``retries`` bounds per-singleton re-executions;
    ``degrade_backend`` names the backend for the final pre-quarantine
    attempt (``None`` disables degradation); ``on_error`` picks what
    terminal failures do to the sweep.
    """

    task_timeout: float | None = None
    retries: int = 2
    backoff_base: float = 0.25
    backoff_max: float = 30.0
    on_error: str = "quarantine"
    degrade_backend: str | None = None
    poll_interval: float = 0.2

    def __post_init__(self) -> None:
        if self.on_error not in _ON_ERROR:
            raise ReproError(
                f"on_error must be one of {_ON_ERROR}, "
                f"got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ReproError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ReproError(
                f"task_timeout must be positive (or None), "
                f"got {self.task_timeout}"
            )


@dataclass
class Task:
    """One schedulable unit: a scenario group plus its retry state."""

    id: int
    specs: tuple
    attempt: int = 0
    backend_override: str | None = None
    not_before: float = 0.0  # monotonic dispatch gate (backoff)
    last_error: dict | None = None

    def digests(self) -> tuple:
        return tuple(s.digest for s in self.specs)


def backoff_delay(cfg: SupervisorConfig, digest: str, attempt: int) -> float:
    """Exponential backoff with deterministic jitter.

    ``base * 2**attempt`` capped at ``backoff_max``, scaled into
    ``[0.5, 1.0)`` of itself by a jitter that is a pure hash of
    ``(digest, attempt)`` — retries de-synchronize across scenarios
    without introducing nondeterminism between identical runs.
    """
    base = min(cfg.backoff_max, cfg.backoff_base * (2.0 ** attempt))
    h = hashlib.sha256(f"{digest}:{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(h[:8], "big") / 2.0**64
    return base * (0.5 + 0.5 * jitter)


def _count(stats: dict, event: str, n: int = 1) -> None:
    stats[event] = stats.get(event, 0) + n
    if obs.enabled():
        metrics().counter(obs_schema.campaign_counter(event)).add(n)


def plan_recovery(
    task: Task,
    cfg: SupervisorConfig,
    next_id,
    *,
    now: float = 0.0,
) -> tuple[list[Task], TaskFailure | None, str]:
    """Decide what happens after ``task`` failed.

    Returns ``(replacements, terminal, event)``: zero or more tasks to
    enqueue, an optional terminal :class:`TaskFailure` (exactly when
    ``replacements`` is empty), and the event name for the stats
    counters (``bisect``/``retry``/``degrade``/``quarantine`` — the
    counters themselves pluralize).  ``task.last_error`` must hold the
    failure evidence dict (``kind``/``type``/``message``/``traceback``/
    ``worker_pid``).
    """
    if len(task.specs) > 1:
        # Isolate the poison: re-run both halves from a fresh attempt
        # budget.  Healthy halves complete normally; the failing half
        # recurses down to the guilty singleton.
        mid = len(task.specs) // 2
        halves = [
            Task(
                id=next_id(),
                specs=part,
                backend_override=task.backend_override,
            )
            for part in (task.specs[:mid], task.specs[mid:])
        ]
        return halves, None, "bisects"
    digest = task.specs[0].digest
    if task.attempt < cfg.retries:
        retry = dc_replace(
            task,
            id=next_id(),
            attempt=task.attempt + 1,
            not_before=now + backoff_delay(cfg, digest, task.attempt),
        )
        return [retry], None, "retries"
    if (
        cfg.degrade_backend is not None
        and task.backend_override != cfg.degrade_backend
    ):
        degraded = dc_replace(
            task,
            id=next_id(),
            attempt=cfg.retries,  # one shot: next failure is terminal
            backend_override=cfg.degrade_backend,
            not_before=now,
        )
        return [degraded], None, "degraded"
    info = task.last_error or {}
    spec = task.specs[0]
    backends = [task.backend_override or spec.sim.backend]
    if task.backend_override is not None:
        backends.insert(0, spec.sim.backend)
    failure = TaskFailure(
        hash=digest,
        scenario=spec.to_spec(),
        kind=info.get("kind", "raise"),
        error_type=info.get("type", "Unknown"),
        message=info.get("message", "task failed"),
        traceback=info.get("traceback", ""),
        attempts=task.attempt + 1,
        backends=tuple(dict.fromkeys(backends)),
        worker_pid=info.get("worker_pid"),
        ts=time.time(),
    )
    return [], failure, "quarantined"


def _apply_override(specs, backend_override):
    if backend_override is None:
        return specs
    from dataclasses import replace

    return tuple(
        replace(s, sim=replace(s.sim, backend=backend_override))
        for s in specs
    )


# -- worker side -------------------------------------------------------------


def _worker_main(inq, outq, init_args, chaos: ChaosSpec | None) -> None:
    """The supervised worker loop: init, then task → result until stop.

    Reuses the runner's pool initializer and group executor verbatim
    (imported lazily — the runner imports this module at top level).
    Exceptions become structured ``err`` messages carrying the child's
    formatted traceback; chaos crash/hang injection happens before the
    group runs, so a killed worker never holds the result pipe's lock.
    """
    from repro.campaign import runner

    runner._worker_init(*init_args)
    while True:
        msg = inq.get()
        if msg is None:
            return
        task_id, specs, attempt, backend_override, use_shm, dispatch_ts = msg
        try:
            if chaos:
                chaos.apply(
                    [s.digest for s in specs],
                    attempt,
                    backend=backend_override,
                )
            specs = _apply_override(specs, backend_override)
            _, payload, delta, tele = runner._run_group_shm(
                (task_id, list(specs), use_shm, dispatch_ts)
            )
            outq.put(("ok", task_id, os.getpid(), payload, delta, tele))
        except Exception as exc:  # noqa: BLE001 — shipped, not swallowed
            if isinstance(exc, RemoteTaskError):
                traceback_text = exc.remote_traceback
                message = exc.args[0] if exc.args else str(exc)
            else:
                traceback_text = format_remote_traceback(exc)
                message = str(exc)
            outq.put((
                "err",
                task_id,
                os.getpid(),
                {
                    "kind": "raise",
                    "type": type(exc).__name__,
                    "message": message,
                    "traceback": traceback_text,
                    "worker_pid": os.getpid(),
                },
            ))


class _Worker:
    """One supervised worker process and its private task queue.

    Up to :data:`PREFETCH` tasks are in flight per worker — one running
    plus one queued — so a worker rolls straight into its next task
    without waiting a parent round-trip (the latency that would
    otherwise make supervision measurably slower than a bare
    ``Pool.imap_unordered``, whose workers pull from a pre-loaded
    queue).  ``inflight[0]`` is the running task; its wall-clock
    deadline starts at dispatch, or at the moment the previous result
    arrived.
    """

    def __init__(self, ctx, outq, init_args, chaos) -> None:
        self._ctx = ctx
        self._outq = outq
        self._init_args = init_args
        self._chaos = chaos
        self.inflight: deque[Task] = deque()
        self.started = 0.0
        self.spawn()

    def spawn(self) -> None:
        # A fresh inbound queue per (re)spawn: a SIGKILL mid-``get``
        # can leave the old queue's read end in an undefined state.
        self.inq = self._ctx.Queue()
        self.proc = self._ctx.Process(
            target=_worker_main,
            args=(self.inq, self._outq, self._init_args, self._chaos),
            daemon=True,
        )
        self.proc.start()
        self.inflight = deque()
        self.started = 0.0

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def dispatch(self, task: Task, use_shm: bool, dispatch_ts) -> None:
        if not self.inflight:
            self.started = time.monotonic()
        self.inflight.append(task)
        self.inq.put((
            task.id, list(task.specs), task.attempt,
            task.backend_override, use_shm, dispatch_ts,
        ))

    def kill(self) -> None:
        if self.proc.is_alive():
            try:
                os.kill(self.proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        self.proc.join(timeout=5.0)
        self.inq.close()

    def stop(self) -> None:
        """Graceful stop: sentinel, short join, then force-kill."""
        try:
            self.inq.put(None)
        except (ValueError, OSError):
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.kill()


# -- engines -----------------------------------------------------------------


class _Scheduler:
    """Shared retry/bisect/quarantine bookkeeping of both engines."""

    def __init__(self, tasks, cfg, on_failure) -> None:
        self.cfg = cfg
        self.on_failure = on_failure
        self.pending: deque[Task] = deque(tasks)
        self.waiting: list[Task] = []  # backoff-gated, sorted lazily
        self.done_digests: set[str] = set()
        self.stats = {key: 0 for key in STAT_KEYS}
        self._ids = iter(range(len(self.pending) * 4096, 2**62))

    def next_id(self) -> int:
        return next(self._ids)

    def promote_ready(self, now: float) -> None:
        still = []
        for task in self.waiting:
            if task.not_before <= now:
                self.pending.append(task)
            else:
                still.append(task)
        self.waiting = still

    def next_wakeup(self, now: float) -> float | None:
        if not self.waiting:
            return None
        return max(0.0, min(t.not_before for t in self.waiting) - now)

    def pop_ready(self) -> Task | None:
        """The next dispatchable task, skipping fully-completed ones."""
        while self.pending:
            task = self.pending.popleft()
            fresh = [
                s for s in task.specs if s.digest not in self.done_digests
            ]
            if not fresh:
                continue
            if len(fresh) != len(task.specs):
                task = dc_replace(task, specs=tuple(fresh))
            return task
        return None

    def idle(self) -> bool:
        return not self.pending and not self.waiting

    def complete(self, task: Task) -> None:
        self.done_digests.update(task.digests())

    def fail(self, task: Task, info: dict, now: float) -> None:
        """Route one failed task through the recovery policy."""
        task.last_error = info
        replacements, terminal, event = plan_recovery(
            task, self.cfg, self.next_id, now=now
        )
        _count(self.stats, event)
        if terminal is not None:
            # Terminal means quarantined (or about to abort): mark the
            # digest handled so overlapping late results don't resurrect
            # a scenario the caller already recorded as failed.
            self.done_digests.add(terminal.hash)
            _log.warning(
                "scenario %s quarantined after %d attempt(s): %s: %s",
                terminal.hash, terminal.attempts,
                terminal.error_type,
                terminal.message.splitlines()[0]
                if terminal.message else "",
            )
            self.on_failure(terminal)
            return
        for sub in replacements:
            sub.last_error = info
            if sub.not_before > now:
                self.waiting.append(sub)
            else:
                self.pending.append(sub)


def run_supervised(
    tasks,
    *,
    workers: int,
    cfg: SupervisorConfig,
    init_args,
    chaos: ChaosSpec | None,
    use_shm: bool,
    dispatch_ts_factory,
    on_result,
    on_failure,
    on_dispatch=None,
    on_tick=None,
) -> dict:
    """Run group tasks over a supervised worker pool; return stats.

    ``tasks`` is a list of spec tuples (one per group).  ``on_result``
    receives ``(task, payload, delta, tele)`` exactly once per
    completed scenario set; ``on_failure`` receives each terminal
    :class:`TaskFailure` (raising inside it aborts the sweep — the
    pool is torn down and the exception propagates).  ``on_dispatch``
    and ``on_tick`` are liveness hooks for heartbeat integration.
    """
    ctx = multiprocessing.get_context()
    outq = ctx.Queue()
    sched = _Scheduler(
        [Task(id=i, specs=tuple(specs)) for i, specs in enumerate(tasks)],
        cfg,
        on_failure,
    )
    completed_ids: set[int] = set()
    pool = [
        _Worker(ctx, outq, init_args, chaos) for _ in range(workers)
    ]

    def _respawn(worker: _Worker) -> None:
        _count(sched.stats, "respawns")
        worker.spawn()

    def _drain_results() -> bool:
        """Handle every queued worker message; True when any arrived."""
        got = False
        while True:
            try:
                msg = outq.get_nowait()
            except queue_module.Empty:
                return got
            got = True
            _handle(msg)

    def _handle(msg) -> None:
        now = time.monotonic()
        status, task_id, pid = msg[0], msg[1], msg[2]
        worker = next(
            (
                w for w in pool
                if w.inflight and w.inflight[0].id == task_id
            ),
            None,
        )
        task = None
        if worker is not None:
            task = worker.inflight.popleft()
            # The prefetched successor started the moment this result
            # was produced: restart its wall clock now.
            worker.started = now
        if task is None or task_id in completed_ids:
            # A late echo of a task the supervisor already retired
            # (result raced a timeout kill, or a duplicate after
            # bisection).  Replacements recompute deterministically;
            # dropping the echo cannot lose data — but a zero-copy
            # payload still owns a shared-memory segment to release.
            if status == "ok":
                payload = msg[3]
                if isinstance(payload, tuple) and payload[0] == "shm":
                    from multiprocessing import shared_memory

                    try:
                        seg = shared_memory.SharedMemory(name=payload[1])
                        seg.close()
                        seg.unlink()
                    except FileNotFoundError:
                        pass
            return
        completed_ids.add(task_id)
        if status == "ok":
            _, _, _, payload, delta, tele = msg
            sched.complete(task)
            on_result(task, payload, delta, tele)
        else:
            _, _, _, info = msg
            sched.fail(task, info, now)

    try:
        while True:
            now = time.monotonic()
            sched.promote_ready(now)
            # Fill every worker to its prefetch depth, shallowest
            # first, so tasks spread across the pool before stacking.
            for depth in range(PREFETCH):
                for worker in pool:
                    if len(worker.inflight) != depth:
                        continue
                    task = sched.pop_ready()
                    if task is None:
                        break
                    worker.dispatch(task, use_shm, dispatch_ts_factory())
                    if on_dispatch is not None:
                        on_dispatch(worker.pid, task)
            inflight = [w for w in pool if w.inflight]
            if not inflight and sched.idle():
                break
            # Wait for the next event: a result, the nearest deadline,
            # or the nearest backoff expiry — bounded by poll_interval
            # so worker deaths are noticed promptly.
            wait = cfg.poll_interval
            if cfg.task_timeout is not None and inflight:
                nearest = min(
                    w.started + cfg.task_timeout - now for w in inflight
                )
                wait = min(wait, max(0.0, nearest))
            wakeup = sched.next_wakeup(now)
            if wakeup is not None:
                wait = min(wait, wakeup)
            try:
                msg = outq.get(timeout=max(0.01, wait))
            except queue_module.Empty:
                msg = None
            if msg is not None:
                _handle(msg)
                _drain_results()
            now = time.monotonic()
            # Crashed workers: dead process while holding tasks.  The
            # running head failed; prefetched successors never started
            # and simply re-enter the queue, no attempt consumed.
            for worker in pool:
                if worker.proc.is_alive():
                    continue
                head = worker.inflight.popleft() if worker.inflight else None
                queued = list(worker.inflight)
                _respawn(worker)
                for task in queued:
                    if task.id not in completed_ids:
                        sched.pending.append(task)
                if head is None or head.id in completed_ids:
                    continue
                completed_ids.add(head.id)
                _count(sched.stats, "crashes")
                sched.fail(
                    head,
                    {
                        "kind": "crash",
                        "type": "WorkerCrashed",
                        "message": (
                            "worker process died while running the task "
                            "(signal/OOM/segfault; no traceback "
                            "available)"
                        ),
                        "traceback": "",
                        "worker_pid": None,
                    },
                    now,
                )
            # Hung workers: running head past the wall-clock deadline.
            if cfg.task_timeout is not None:
                for worker in pool:
                    if not worker.inflight:
                        continue
                    if now - worker.started <= cfg.task_timeout:
                        continue
                    head = worker.inflight.popleft()
                    queued = list(worker.inflight)
                    pid = worker.pid
                    _log.warning(
                        "task %d exceeded task_timeout=%.3gs on worker "
                        "%s; killing and retrying",
                        head.id, cfg.task_timeout, pid,
                    )
                    worker.kill()
                    _respawn(worker)
                    for task in queued:
                        if task.id not in completed_ids:
                            sched.pending.append(task)
                    if head.id in completed_ids:
                        continue
                    completed_ids.add(head.id)
                    _count(sched.stats, "timeouts")
                    sched.fail(
                        head,
                        {
                            "kind": "hang",
                            "type": "TaskTimeout",
                            "message": (
                                f"task exceeded the {cfg.task_timeout:g}s "
                                f"wall-clock timeout on worker {pid}"
                            ),
                            "traceback": "",
                            "worker_pid": pid,
                        },
                        now,
                    )
            if on_tick is not None:
                on_tick()
    finally:
        for worker in pool:
            worker.stop()
        outq.close()
    return sched.stats


def run_inline(
    tasks,
    *,
    cfg: SupervisorConfig,
    execute,
    on_result,
    on_failure,
) -> dict:
    """The single-process engine: same recovery policy, no pool.

    ``execute(task)`` runs one group in the calling process and returns
    its result payload; raising routes the task through
    retry → bisect → degrade → quarantine exactly like the pool path.
    Hang and crash supervision need a separate process and are
    therefore pool-only: inline, a hang blocks and a crash kills the
    run — ``workers=1`` remains the transparent debugging mode.
    """
    sched = _Scheduler(
        [Task(id=i, specs=tuple(specs)) for i, specs in enumerate(tasks)],
        cfg,
        on_failure,
    )
    while True:
        now = time.monotonic()
        sched.promote_ready(now)
        task = sched.pop_ready()
        if task is None:
            if sched.idle():
                break
            delay = sched.next_wakeup(now)
            if delay:
                time.sleep(delay)
            continue
        try:
            payload = execute(task)
        except Exception as exc:  # noqa: BLE001 — routed, not swallowed
            if isinstance(exc, RemoteTaskError):
                traceback_text = exc.remote_traceback
                message = exc.args[0] if exc.args else str(exc)
            else:
                traceback_text = format_remote_traceback(exc)
                message = str(exc)
            sched.fail(
                task,
                {
                    "kind": "raise",
                    "type": type(exc).__name__,
                    "message": message,
                    "traceback": traceback_text,
                    "worker_pid": os.getpid(),
                },
                time.monotonic(),
            )
            continue
        sched.complete(task)
        on_result(task, payload)
    return sched.stats
