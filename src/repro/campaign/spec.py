"""Declarative sweep grids and their deterministic scenario expansion.

A :class:`CampaignSpec` is a small, JSON-serializable description of a
cartesian grid — topologies × stages × traffic patterns × rates × fault
counts × seeds — plus the scalar run parameters shared by every point
(cycles, contention policy, drain).  :func:`expand_scenarios` unrolls the
grid into a flat list of :class:`~repro.spec.scenario.ScenarioSpec`
values in a fixed order, so the same spec always yields the same
scenarios with the same digests.

Design points that make campaigns reproducible and comparable:

* **Scenarios are specs.**  A grid point expands to a frozen
  :class:`~repro.spec.scenario.ScenarioSpec` that names a topology
  (registry entry or saved ``repro-midigraph`` file), never holds a
  network object, so only small specs cross the worker pipe and the
  scenario digest is a stable function of the grid alone.
* **Fault seeds are topology-independent.**  The fault seed of a grid
  point is derived from the fault entry and the run seed only, and the
  fault sample depends on the network *shape* — so every same-shape
  topology in the grid is degraded by the *identical* fault set, the
  apples-to-apples comparison Theorem 1 makes meaningful.
* **File topologies are digest-pinned.**  A topology entry referencing a
  saved network JSON records a content digest at expansion time
  (:meth:`~repro.spec.scenario.NetworkSpec.pin`); resuming a campaign
  against a silently modified file fails loudly instead of mixing
  incompatible results.

The pre-spec-layer surface — :func:`scenario_hash`,
:func:`scenario_group_key` and the :class:`Scenario` record — survives
as thin deprecation shims that forward to the spec layer.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.errors import ReproError
from repro.spec.scenario import (
    FaultSpec,
    NetworkSpec,
    ScenarioSpec,
    SimPolicy,
    TrafficSpec,
    _doc_group_key,
    is_file_entry,
    normalize_network_entry,
    normalize_traffic_entry,
    scenario_digest,
)

__all__ = [
    "CampaignSpec",
    "Scenario",
    "expand_scenarios",
    "is_file_entry",
    "scenario_group_key",
    "scenario_hash",
]

_POLICIES = ("drop", "block")

# Stride separating the fault-seed streams of consecutive fault-grid
# entries; any constant larger than every realistic seed axis works.
_FAULT_SEED_STRIDE = 1_000_003


def scenario_hash(doc: Mapping) -> str:
    """Deprecated alias of :func:`repro.spec.scenario.scenario_digest`.

    The identity it computes is unchanged (stores and ``--resume`` keep
    working); new code should read ``ScenarioSpec.digest`` or call
    :func:`repro.spec.scenario.scenario_digest` on raw wire dicts.
    """
    warnings.warn(
        "scenario_hash is deprecated; use ScenarioSpec.digest "
        "(repro.spec.scenario_digest for raw dicts)",
        DeprecationWarning,
        stacklevel=2,
    )
    return scenario_digest(doc)


def scenario_group_key(doc: Mapping) -> str:
    """Deprecated alias of :meth:`~repro.spec.scenario.ScenarioSpec.group_key`.

    The key it computes is unchanged; new code should call
    ``ScenarioSpec.group_key()``.
    """
    warnings.warn(
        "scenario_group_key is deprecated; use ScenarioSpec.group_key()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _doc_group_key(doc)


class Scenario:
    """Deprecated pre-spec-layer scenario record.

    Construction forwards to :class:`~repro.spec.scenario.ScenarioSpec`
    (via :meth:`~repro.spec.scenario.ScenarioSpec.from_spec`) and keeps
    the old ``to_dict`` / ``hash`` / ``label`` surface.  New code should
    build :class:`~repro.spec.scenario.ScenarioSpec` directly.
    """

    def __init__(
        self,
        topology: Mapping,
        traffic: Mapping,
        cycles: int,
        policy: str,
        drain: bool,
        seed: int,
        fault_cells: int,
        fault_links: int,
        fault_seed: int,
    ) -> None:
        warnings.warn(
            "campaign.Scenario is deprecated; use repro.spec.ScenarioSpec",
            DeprecationWarning,
            stacklevel=2,
        )
        self._spec = ScenarioSpec.from_spec(
            {
                "topology": dict(topology),
                "traffic": dict(traffic),
                "cycles": cycles,
                "policy": policy,
                "drain": drain,
                "seed": seed,
                "fault_cells": fault_cells,
                "fault_links": fault_links,
                "fault_seed": fault_seed,
            }
        )

    @property
    def spec(self) -> ScenarioSpec:
        """The equivalent :class:`~repro.spec.scenario.ScenarioSpec`."""
        return self._spec

    def to_dict(self) -> dict:
        """The scenario as its plain JSON wire dict."""
        return self._spec.to_spec()

    @property
    def hash(self) -> str:
        """Stable identity (``ScenarioSpec.digest``)."""
        return self._spec.digest

    @property
    def label(self) -> str:
        """The topology display label (the report's network name)."""
        return self._spec.label

    def __eq__(self, other: object) -> bool:
        # The old Scenario was a frozen dataclass; keep value equality
        # (including against ScenarioSpec) so legacy dedup/compare code
        # behaves identically behind the shim.
        if isinstance(other, Scenario):
            return self._spec == other._spec
        if isinstance(other, ScenarioSpec):
            return self._spec == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._spec)

    def __repr__(self) -> str:
        return f"Scenario({self._spec!r})"


def _normalize_faults(entry) -> tuple[int, int]:
    """Validate a fault-grid entry into ``(cells, links)`` counts."""
    if isinstance(entry, bool):
        raise ReproError(f"fault entry must be a count, got {entry!r}")
    if isinstance(entry, int):
        cells, links = entry, 0
    elif isinstance(entry, Mapping):
        extra = set(entry) - {"cells", "links"}
        if extra:
            raise ReproError(f"unexpected fault entry keys {sorted(extra)}")
        cells = int(entry.get("cells", 0))
        links = int(entry.get("links", 0))
    else:
        raise ReproError(
            f"fault entry must be an int (dead cells) or a "
            f"{{'cells': ..., 'links': ...}} mapping, got {entry!r}"
        )
    if cells < 0 or links < 0:
        raise ReproError(f"fault counts must be >= 0, got {entry!r}")
    return cells, links


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep grid (the ``repro-campaign`` JSON document).

    Attributes
    ----------
    topologies:
        Topology entries: registry names
        (:data:`~repro.networks.catalog.NETWORK_CATALOG`), paths to
        saved ``repro-midigraph`` JSON files, or mappings
        ``{"name"|"file": ..., "label": ..., **params}`` (extra keys go
        to the registry schema, e.g. ``{"name": "omega_k", "k": 3}``).
    stages:
        Network orders for the catalog entries (file entries carry their
        own fixed shape and ignore this axis).
    traffic:
        Traffic entries: pattern names or ``{"name": ..., **kwargs}``.
    rates:
        Injection rates in ``(0, 1]``.
    faults:
        Fault-count entries: an int ``k`` (kill ``k`` switches) or
        ``{"cells": a, "links": b}``.
    seeds:
        Simulation seeds; each grid point runs once per seed.
    cycles, policy, drain:
        Scalar run parameters shared by every scenario.
    fault_seed_base:
        Offset of the derived fault-seed streams (rarely needed; lets two
        campaigns sample disjoint fault populations).
    nested_faults:
        When True, every fault entry shares one fault-seed stream
        (``base + stride + seed``) instead of the per-entry streams, so —
        with :meth:`FaultSet.from_counts` prefix sampling — the fault
        sets at different counts are *nested*: the ``k``-fault draw of a
        seed is a subset of its ``k+1``-fault draw.  Reliability sweeps
        (:class:`repro.campaign.reliability.ReliabilitySweepSpec`) set
        this so availability is monotone non-increasing in the count by
        construction.
    """

    topologies: tuple = ("omega",)
    stages: tuple = (4,)
    traffic: tuple = ("uniform",)
    rates: tuple = (1.0,)
    faults: tuple = (0,)
    seeds: tuple = (0,)
    cycles: int = 200
    policy: str = "drop"
    drain: bool = False
    fault_seed_base: int = 0
    nested_faults: bool = False

    # Canonical entry forms, computed once by __post_init__.
    _topologies: tuple = field(init=False, repr=False, compare=False)
    _traffic: tuple = field(init=False, repr=False, compare=False)
    _faults: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        def _tup(name: str, value) -> tuple:
            if isinstance(value, (str, Mapping)) or not isinstance(
                value, Sequence
            ):
                value = (value,)
            if len(value) == 0:
                raise ReproError(f"campaign spec axis {name!r} is empty")
            return tuple(value)

        object.__setattr__(self, "topologies", _tup("topologies", self.topologies))
        object.__setattr__(self, "stages", _tup("stages", self.stages))
        object.__setattr__(self, "traffic", _tup("traffic", self.traffic))
        object.__setattr__(self, "rates", _tup("rates", self.rates))
        object.__setattr__(self, "faults", _tup("faults", self.faults))
        object.__setattr__(self, "seeds", _tup("seeds", self.seeds))
        object.__setattr__(
            self,
            "_topologies",
            tuple(normalize_network_entry(t) for t in self.topologies),
        )
        object.__setattr__(
            self,
            "_traffic",
            tuple(normalize_traffic_entry(t) for t in self.traffic),
        )
        object.__setattr__(
            self,
            "_faults",
            tuple(_normalize_faults(f) for f in self.faults),
        )
        if len(set(self._faults)) != len(self._faults):
            # [2, {"cells": 2}] normalizes to the same counts twice.
            raise ReproError("duplicate fault entries in campaign spec")
        for n in self.stages:
            if not isinstance(n, int) or isinstance(n, bool) or n < 2:
                raise ReproError(f"stages entries must be ints >= 2, got {n!r}")
        for rate in self.rates:
            if not 0.0 < float(rate) <= 1.0:
                raise ReproError(f"rates must be in (0, 1], got {rate!r}")
        for seed in self.seeds:
            if (
                not isinstance(seed, int)
                or isinstance(seed, bool)
                or not 0 <= seed < _FAULT_SEED_STRIDE
            ):
                # The upper bound keeps the per-fault-entry seed streams
                # disjoint (fault_seed = base + stride·entry + seed).
                raise ReproError(
                    f"seeds must be ints in [0, {_FAULT_SEED_STRIDE}), "
                    f"got {seed!r}"
                )
        if len(set(self.seeds)) != len(self.seeds):
            raise ReproError("duplicate seeds in campaign spec")
        if self.fault_seed_base < 0:
            raise ReproError(
                f"fault_seed_base must be >= 0, got {self.fault_seed_base}"
            )
        if not isinstance(self.nested_faults, bool):
            raise ReproError(
                f"nested_faults must be a bool, got {self.nested_faults!r}"
            )
        if self.cycles <= 0:
            raise ReproError(f"cycles must be positive, got {self.cycles}")
        if self.policy not in _POLICIES:
            raise ReproError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}"
            )

    @property
    def n_scenarios(self) -> int:
        """Grid cardinality (file topologies ignore the stages axis)."""
        n_cat = sum(1 for t in self._topologies if t["kind"] == "catalog")
        n_file = len(self._topologies) - n_cat
        per_topo = (
            len(self._traffic) * len(self.rates) * len(self._faults)
            * len(self.seeds)
        )
        return (n_cat * len(self.stages) + n_file) * per_topo

    def to_dict(self) -> dict:
        """The spec as a JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "topologies": [
                dict(t) if isinstance(t, Mapping) else t
                for t in self.topologies
            ],
            "stages": list(self.stages),
            "traffic": [
                dict(t) if isinstance(t, Mapping) else t
                for t in self.traffic
            ],
            "rates": [float(r) for r in self.rates],
            "faults": [
                dict(f) if isinstance(f, Mapping) else f
                for f in self.faults
            ],
            "seeds": list(self.seeds),
            "cycles": self.cycles,
            "policy": self.policy,
            "drain": self.drain,
            "fault_seed_base": self.fault_seed_base,
            "nested_faults": self.nested_faults,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (with validation)."""
        known = {
            "topologies", "stages", "traffic", "rates", "faults",
            "seeds", "cycles", "policy", "drain", "fault_seed_base",
            "nested_faults",
        }
        extra = set(doc) - known
        if extra:
            raise ReproError(f"unknown campaign spec fields {sorted(extra)}")
        kwargs = {k: doc[k] for k in known & set(doc)}
        return cls(**kwargs)


def _grid_networks(
    spec: CampaignSpec, base: Path | None
) -> list[NetworkSpec]:
    """The topology axis as pinned, labelled :class:`NetworkSpec` values."""
    networks: list[NetworkSpec] = []
    for doc in spec._topologies:
        if doc["kind"] == "file":
            networks.append(NetworkSpec.from_entry(doc).pin(base))
            continue
        for n in spec.stages:
            if "label" in doc:
                # A custom label covers a single stage verbatim; across a
                # stages axis each instance needs its own identity.
                label = (
                    doc["label"]
                    if len(spec.stages) == 1
                    else f"{doc['label']}({n})"
                )
                networks.append(
                    NetworkSpec.from_entry({**doc, "label": label}, n=n)
                )
            else:
                # No custom label: NetworkSpec derives name(n[,k=…]).
                networks.append(NetworkSpec.from_entry(doc, n=n))
    labels = [net.label for net in networks]
    if len(set(labels)) != len(labels):
        # Aggregation identifies topologies by label; e.g. two files
        # sharing a basename must be told apart with explicit labels.
        dup = sorted({x for x in labels if labels.count(x) > 1})
        raise ReproError(
            f"duplicate topology labels {dup}; set distinct 'label' "
            "entries"
        )
    return networks


def expand_scenarios(
    spec: CampaignSpec, *, base_dir: str | Path | None = None
) -> list[ScenarioSpec]:
    """Unroll a spec into its deterministic, duplicate-free scenario list.

    ``base_dir`` anchors relative file-topology paths (the CLI passes the
    spec file's directory).  Order is the row-major grid order —
    topologies, stages, traffic, rates, faults, seeds — and is part of
    the contract: a spec maps to one scenario sequence, always.
    """
    base = Path(base_dir) if base_dir is not None else None
    networks = _grid_networks(spec, base)
    sim = SimPolicy(
        cycles=spec.cycles, policy=spec.policy, drain=spec.drain
    )
    # Specs are frozen, so each (traffic entry, rate) pair builds one
    # TrafficSpec shared by every grid point that uses it — validation
    # (which instantiates the pattern once) stays per axis entry, not
    # per scenario.
    traffic_specs = [
        [
            TrafficSpec.from_spec({**traffic, "rate": float(rate)})
            for rate in spec.rates
        ]
        for traffic in spec._traffic
    ]
    scenarios: list[ScenarioSpec] = []
    seen: set[str] = set()
    for network in networks:
        for traffic_row in traffic_specs:
            for traffic_spec in traffic_row:
                for fi, (cells, links) in enumerate(spec._faults):
                    for seed in spec.seeds:
                        fault_seed = 0
                        if cells or links:
                            # Nested sweeps pin one stream for every fault
                            # entry (the fi = 0 stream, never zero), so a
                            # seed's draws at growing counts are prefixes
                            # of one kill order.
                            stride = 1 if spec.nested_faults else fi + 1
                            fault_seed = (
                                spec.fault_seed_base
                                + _FAULT_SEED_STRIDE * stride
                                + int(seed)
                            )
                        scn = ScenarioSpec(
                            network=network,
                            traffic=traffic_spec,
                            sim=sim,
                            faults=FaultSpec(
                                cells=cells, links=links, seed=fault_seed
                            ),
                            seed=int(seed),
                        )
                        if scn.digest in seen:
                            raise ReproError(
                                f"duplicate grid point {scn.to_spec()} "
                                "(repeated axis entry?)"
                            )
                        seen.add(scn.digest)
                        scenarios.append(scn)
    return scenarios
