"""Declarative sweep grids and their deterministic scenario expansion.

A :class:`CampaignSpec` is a small, JSON-serializable description of a
cartesian grid — topologies × stages × traffic patterns × rates × fault
counts × seeds — plus the scalar run parameters shared by every point
(cycles, contention policy, drain).  :func:`expand_scenarios` unrolls the
grid into a flat list of :class:`Scenario` values in a fixed order, so the
same spec always yields the same scenarios with the same hashes.

Design points that make campaigns reproducible and comparable:

* **Scenarios are plain dicts.**  A scenario names a topology (catalog
  entry or saved ``repro-midigraph`` file), never holds a network object,
  so only small dicts cross the worker pipe and the scenario hash is a
  stable function of the spec alone.
* **Fault seeds are topology-independent.**  The fault seed of a grid
  point is derived from the fault entry and the run seed only, and
  :meth:`repro.sim.faults.FaultSet.random` samples from the network
  *shape* — so every same-shape topology in the grid is degraded by the
  *identical* fault set, the apples-to-apples comparison Theorem 1 makes
  meaningful.
* **File topologies are digest-pinned.**  A topology entry referencing a
  saved network JSON records a content digest at expansion time; resuming
  a campaign against a silently modified file fails loudly instead of
  mixing incompatible results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.errors import ReproError
from repro.networks.catalog import NETWORK_CATALOG
from repro.sim.traffic import (
    TRAFFIC_PATTERNS,
    PermutationTraffic,
    traffic_from_spec,
)

__all__ = [
    "CampaignSpec",
    "Scenario",
    "expand_scenarios",
    "is_file_entry",
    "scenario_group_key",
    "scenario_hash",
]

_POLICIES = ("drop", "block")

# Stride separating the fault-seed streams of consecutive fault-grid
# entries; any constant larger than every realistic seed axis works.
_FAULT_SEED_STRIDE = 1_000_003


def _canonical(doc: object) -> str:
    """Canonical JSON: sorted keys, no whitespace — the hashing form."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def scenario_hash(doc: Mapping) -> str:
    """The stable 16-hex-digit identity of a scenario dict.

    Hashes the canonical JSON form, so any two scenarios that would run
    the same simulation collide and everything else separates — the key
    of the append-only result store and the basis of ``--resume``.  For
    file topologies the *path spelling* is excluded (the content digest
    and label identify the network), so resuming from a different
    working directory or via a different relative path still matches.
    """
    doc = {k: doc[k] for k in doc}
    topo = doc.get("topology")
    if isinstance(topo, Mapping) and topo.get("kind") == "file":
        doc["topology"] = {k: v for k, v in topo.items() if k != "path"}
    digest = hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()
    return digest[:16]


def scenario_group_key(doc: Mapping) -> str:
    """The batch-compatibility key of a scenario dict.

    Two scenarios sharing this key may run as one
    :func:`repro.sim.batch.simulate_batch` call: same topology, cycles,
    policy, drain and fault sample — only the traffic spec and the
    simulation seed vary inside a group.  The runner groups pending
    scenarios by this key and dispatches whole groups to pool workers.
    """
    return _canonical(
        {
            "topology": dict(doc["topology"]),
            "cycles": doc["cycles"],
            "policy": doc["policy"],
            "drain": doc["drain"],
            "fault_cells": doc["fault_cells"],
            "fault_links": doc["fault_links"],
            "fault_seed": doc["fault_seed"],
        }
    )


@dataclass(frozen=True)
class Scenario:
    """One fully-specified simulation point of a campaign grid.

    Attributes
    ----------
    topology:
        ``{"kind": "catalog", "name": ..., "n": ..., "label": ...}`` or
        ``{"kind": "file", "path": ..., "digest": ..., "label": ...}``.
    traffic:
        A traffic spec dict (see
        :func:`repro.sim.traffic.traffic_from_spec`), rate included.
    cycles, policy, drain, seed:
        The :func:`repro.sim.simulate` run parameters.
    fault_cells, fault_links:
        Component-failure counts sampled by the worker.
    fault_seed:
        Seed of the fault sample; identical across same-shape topologies
        of one grid point, 0 when the scenario is fault-free.
    """

    topology: Mapping
    traffic: Mapping
    cycles: int
    policy: str
    drain: bool
    seed: int
    fault_cells: int
    fault_links: int
    fault_seed: int

    def to_dict(self) -> dict:
        """The scenario as the plain JSON dict workers receive."""
        return {
            "topology": dict(self.topology),
            "traffic": dict(self.traffic),
            "cycles": self.cycles,
            "policy": self.policy,
            "drain": self.drain,
            "seed": self.seed,
            "fault_cells": self.fault_cells,
            "fault_links": self.fault_links,
            "fault_seed": self.fault_seed,
        }

    @property
    def hash(self) -> str:
        """Stable identity, see :func:`scenario_hash`."""
        return scenario_hash(self.to_dict())

    @property
    def label(self) -> str:
        """The topology display label (the report's network name)."""
        return str(self.topology["label"])


def is_file_entry(entry: str) -> bool:
    """True when a string topology entry names a file, not the catalog.

    The single classifier behind both spec normalization and the CLI's
    path resolution: anything that is not a catalog name and looks like
    a path (ends in ``.json`` or contains a separator) is a file entry.
    """
    return entry not in NETWORK_CATALOG and (
        entry.endswith(".json") or "/" in entry
    )


def _normalize_topology(entry) -> dict:
    """Validate a spec topology entry into its canonical dict form."""
    if isinstance(entry, str):
        if entry in NETWORK_CATALOG:
            return {"kind": "catalog", "name": entry}
        if is_file_entry(entry):
            return {"kind": "file", "path": entry}
        raise ReproError(
            f"unknown topology {entry!r}; catalog names are "
            f"{sorted(NETWORK_CATALOG)} (file entries end in .json)"
        )
    if isinstance(entry, Mapping):
        if "file" in entry:
            extra = set(entry) - {"file", "label"}
            if extra:
                raise ReproError(
                    f"unexpected topology entry keys {sorted(extra)}"
                )
            doc = {"kind": "file", "path": str(entry["file"])}
            if "label" in entry:
                doc["label"] = str(entry["label"])
            return doc
        if "name" in entry:
            extra = set(entry) - {"name", "label"}
            if extra:
                raise ReproError(
                    f"unexpected topology entry keys {sorted(extra)}"
                )
            name = str(entry["name"])
            if name not in NETWORK_CATALOG:
                raise ReproError(
                    f"unknown catalog topology {name!r}; choose from "
                    f"{sorted(NETWORK_CATALOG)}"
                )
            doc = {"kind": "catalog", "name": name}
            if "label" in entry:
                doc["label"] = str(entry["label"])
            return doc
    raise ReproError(
        f"topology entry must be a catalog name, a .json path or a "
        f"{{'file'|'name': ..., 'label': ...}} mapping, got {entry!r}"
    )


def _normalize_traffic(entry) -> dict:
    """Validate a spec traffic entry (rate-free traffic spec dict)."""
    if isinstance(entry, str):
        entry = {"name": entry}
    if not isinstance(entry, Mapping) or "name" not in entry:
        raise ReproError(
            f"traffic entry must be a pattern name or a "
            f"{{'name': ...}} mapping, got {entry!r}"
        )
    doc = {k: entry[k] for k in sorted(entry)}
    if "rate" in doc:
        raise ReproError(
            "traffic entries must not fix 'rate'; use the spec's "
            "rates axis"
        )
    name = str(doc["name"])
    known = set(TRAFFIC_PATTERNS) | {PermutationTraffic.name}
    if name not in known:
        raise ReproError(
            f"unknown traffic pattern {name!r}; choose from {sorted(known)}"
        )
    if name == PermutationTraffic.name and "perm" not in doc:
        raise ReproError("permutation traffic entries need a 'perm' list")
    try:
        # Instantiate once so bad kwargs fail at spec construction, not
        # hours into a pooled sweep.
        traffic_from_spec({**doc, "rate": 1.0})
    except (TypeError, ValueError, KeyError) as err:
        raise ReproError(f"invalid traffic entry {entry!r}: {err}") from err
    return doc


def _normalize_faults(entry) -> tuple[int, int]:
    """Validate a fault-grid entry into ``(cells, links)`` counts."""
    if isinstance(entry, bool):
        raise ReproError(f"fault entry must be a count, got {entry!r}")
    if isinstance(entry, int):
        cells, links = entry, 0
    elif isinstance(entry, Mapping):
        extra = set(entry) - {"cells", "links"}
        if extra:
            raise ReproError(f"unexpected fault entry keys {sorted(extra)}")
        cells = int(entry.get("cells", 0))
        links = int(entry.get("links", 0))
    else:
        raise ReproError(
            f"fault entry must be an int (dead cells) or a "
            f"{{'cells': ..., 'links': ...}} mapping, got {entry!r}"
        )
    if cells < 0 or links < 0:
        raise ReproError(f"fault counts must be >= 0, got {entry!r}")
    return cells, links


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep grid (the ``repro-campaign`` JSON document).

    Attributes
    ----------
    topologies:
        Topology entries: catalog names (:data:`NETWORK_CATALOG`), paths
        to saved ``repro-midigraph`` JSON files, or mappings
        ``{"name"|"file": ..., "label": ...}``.
    stages:
        Network orders for the catalog entries (file entries carry their
        own fixed shape and ignore this axis).
    traffic:
        Traffic entries: pattern names or ``{"name": ..., **kwargs}``.
    rates:
        Injection rates in ``(0, 1]``.
    faults:
        Fault-count entries: an int ``k`` (kill ``k`` switches) or
        ``{"cells": a, "links": b}``.
    seeds:
        Simulation seeds; each grid point runs once per seed.
    cycles, policy, drain:
        Scalar run parameters shared by every scenario.
    fault_seed_base:
        Offset of the derived fault-seed streams (rarely needed; lets two
        campaigns sample disjoint fault populations).
    """

    topologies: tuple = ("omega",)
    stages: tuple = (4,)
    traffic: tuple = ("uniform",)
    rates: tuple = (1.0,)
    faults: tuple = (0,)
    seeds: tuple = (0,)
    cycles: int = 200
    policy: str = "drop"
    drain: bool = False
    fault_seed_base: int = 0

    # Canonical entry forms, computed once by __post_init__.
    _topologies: tuple = field(init=False, repr=False, compare=False)
    _traffic: tuple = field(init=False, repr=False, compare=False)
    _faults: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        def _tup(name: str, value) -> tuple:
            if isinstance(value, (str, Mapping)) or not isinstance(
                value, Sequence
            ):
                value = (value,)
            if len(value) == 0:
                raise ReproError(f"campaign spec axis {name!r} is empty")
            return tuple(value)

        object.__setattr__(self, "topologies", _tup("topologies", self.topologies))
        object.__setattr__(self, "stages", _tup("stages", self.stages))
        object.__setattr__(self, "traffic", _tup("traffic", self.traffic))
        object.__setattr__(self, "rates", _tup("rates", self.rates))
        object.__setattr__(self, "faults", _tup("faults", self.faults))
        object.__setattr__(self, "seeds", _tup("seeds", self.seeds))
        object.__setattr__(
            self,
            "_topologies",
            tuple(_normalize_topology(t) for t in self.topologies),
        )
        object.__setattr__(
            self,
            "_traffic",
            tuple(_normalize_traffic(t) for t in self.traffic),
        )
        object.__setattr__(
            self,
            "_faults",
            tuple(_normalize_faults(f) for f in self.faults),
        )
        if len(set(self._faults)) != len(self._faults):
            # [2, {"cells": 2}] normalizes to the same counts twice.
            raise ReproError("duplicate fault entries in campaign spec")
        for n in self.stages:
            if not isinstance(n, int) or isinstance(n, bool) or n < 2:
                raise ReproError(f"stages entries must be ints >= 2, got {n!r}")
        for rate in self.rates:
            if not 0.0 < float(rate) <= 1.0:
                raise ReproError(f"rates must be in (0, 1], got {rate!r}")
        for seed in self.seeds:
            if (
                not isinstance(seed, int)
                or isinstance(seed, bool)
                or not 0 <= seed < _FAULT_SEED_STRIDE
            ):
                # The upper bound keeps the per-fault-entry seed streams
                # disjoint (fault_seed = base + stride·entry + seed).
                raise ReproError(
                    f"seeds must be ints in [0, {_FAULT_SEED_STRIDE}), "
                    f"got {seed!r}"
                )
        if len(set(self.seeds)) != len(self.seeds):
            raise ReproError("duplicate seeds in campaign spec")
        if self.fault_seed_base < 0:
            raise ReproError(
                f"fault_seed_base must be >= 0, got {self.fault_seed_base}"
            )
        if self.cycles <= 0:
            raise ReproError(f"cycles must be positive, got {self.cycles}")
        if self.policy not in _POLICIES:
            raise ReproError(
                f"policy must be one of {_POLICIES}, got {self.policy!r}"
            )

    @property
    def n_scenarios(self) -> int:
        """Grid cardinality (file topologies ignore the stages axis)."""
        n_cat = sum(1 for t in self._topologies if t["kind"] == "catalog")
        n_file = len(self._topologies) - n_cat
        per_topo = (
            len(self._traffic) * len(self.rates) * len(self._faults)
            * len(self.seeds)
        )
        return (n_cat * len(self.stages) + n_file) * per_topo

    def to_dict(self) -> dict:
        """The spec as a JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "topologies": [
                dict(t) if isinstance(t, Mapping) else t
                for t in self.topologies
            ],
            "stages": list(self.stages),
            "traffic": [
                dict(t) if isinstance(t, Mapping) else t
                for t in self.traffic
            ],
            "rates": [float(r) for r in self.rates],
            "faults": [
                dict(f) if isinstance(f, Mapping) else f
                for f in self.faults
            ],
            "seeds": list(self.seeds),
            "cycles": self.cycles,
            "policy": self.policy,
            "drain": self.drain,
            "fault_seed_base": self.fault_seed_base,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (with validation)."""
        known = {
            "topologies", "stages", "traffic", "rates", "faults",
            "seeds", "cycles", "policy", "drain", "fault_seed_base",
        }
        extra = set(doc) - known
        if extra:
            raise ReproError(f"unknown campaign spec fields {sorted(extra)}")
        kwargs = {k: doc[k] for k in known & set(doc)}
        return cls(**kwargs)


def _file_topology(doc: dict, base_dir: Path | None) -> dict:
    """Resolve and digest-pin a file topology entry."""
    from repro.io import loads_network  # deferred: io imports campaign users

    path = Path(doc["path"])
    if base_dir is not None and not path.is_absolute():
        path = base_dir / path
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        raise ReproError(f"cannot read topology file {path}: {err}") from err
    loads_network(text)  # fail at expansion, not in a worker
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
    return {
        "kind": "file",
        "path": str(path),
        "digest": digest,
        "label": doc.get("label", path.stem),
    }


def expand_scenarios(
    spec: CampaignSpec, *, base_dir: str | Path | None = None
) -> list[Scenario]:
    """Unroll a spec into its deterministic, duplicate-free scenario list.

    ``base_dir`` anchors relative file-topology paths (the CLI passes the
    spec file's directory).  Order is the row-major grid order —
    topologies, stages, traffic, rates, faults, seeds — and is part of
    the contract: a spec maps to one scenario sequence, always.
    """
    base = Path(base_dir) if base_dir is not None else None
    topologies: list[dict] = []
    for doc in spec._topologies:
        if doc["kind"] == "file":
            topologies.append(_file_topology(doc, base))
        else:
            for n in spec.stages:
                base_label = doc.get("label", doc["name"])
                # A custom label covers a single stage verbatim; across a
                # stages axis each instance needs its own identity.
                label = (
                    base_label
                    if "label" in doc and len(spec.stages) == 1
                    else f"{base_label}({n})"
                )
                topologies.append(
                    {
                        "kind": "catalog",
                        "name": doc["name"],
                        "n": int(n),
                        "label": label,
                    }
                )
    labels = [t["label"] for t in topologies]
    if len(set(labels)) != len(labels):
        # Aggregation identifies topologies by label; e.g. two files
        # sharing a basename must be told apart with explicit labels.
        dup = sorted({x for x in labels if labels.count(x) > 1})
        raise ReproError(
            f"duplicate topology labels {dup}; set distinct 'label' "
            "entries"
        )

    scenarios: list[Scenario] = []
    seen: set[str] = set()
    for topo in topologies:
        for traffic in spec._traffic:
            for rate in spec.rates:
                for fi, (cells, links) in enumerate(spec._faults):
                    for seed in spec.seeds:
                        fault_seed = 0
                        if cells or links:
                            fault_seed = (
                                spec.fault_seed_base
                                + _FAULT_SEED_STRIDE * (fi + 1)
                                + int(seed)
                            )
                        scn = Scenario(
                            topology=topo,
                            traffic={**traffic, "rate": float(rate)},
                            cycles=spec.cycles,
                            policy=spec.policy,
                            drain=spec.drain,
                            seed=int(seed),
                            fault_cells=cells,
                            fault_links=links,
                            fault_seed=fault_seed,
                        )
                        if scn.hash in seen:
                            raise ReproError(
                                f"duplicate grid point {scn.to_dict()} "
                                "(repeated axis entry?)"
                            )
                        seen.add(scn.hash)
                        scenarios.append(scn)
    return scenarios
