"""Aggregation over a campaign's result store: tables and head-to-heads.

Everything here is a pure, order-independent function of the stored
records: records are sorted by scenario hash (and, within a group, by
seed) before any float is summed, so an interrupted-and-resumed campaign
aggregates to the *byte-identical* report of an uninterrupted run — the
wall-clock ``elapsed`` field is the one nondeterministic report entry and
is excluded from every output.

Two views are produced:

* :func:`aggregate_rows` — the comparison table of the MIN-performance
  literature: one row per (topology, traffic, rate, fault counts) grid
  cell, throughput/blocking/latency averaged over the seed axis.
* :func:`head_to_head` — the empirical echo of Theorem 1: topologies of
  equal shape that ran under the *same* traffic schedule and the *same*
  structural fault set (campaign fault seeds are topology-independent)
  are compared pairwise, per seed, and a pair whose mean throughput or
  latency difference exceeds the noise band is flagged as *divergent*.
  Baseline-equivalent topologies should never be flagged; a flag is
  either a real topological difference or a bug worth chasing.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.campaign.store import ResultStore
from repro.core.errors import ReproError
from repro.sim.metrics import SimReport

__all__ = [
    "aggregate_rows",
    "aggregate_table",
    "dumps_aggregate",
    "head_to_head",
    "head_to_head_table",
    "load_records",
]

_AGGREGATE_FORMAT = "repro-campaign-aggregate"
_AGGREGATE_VERSION = 1


def load_records(
    store: str | Path | ResultStore,
    *,
    hashes: Iterable[str] | None = None,
) -> list[dict]:
    """Load store records sorted by scenario hash.

    ``hashes`` restricts the result to one campaign's scenarios (pass the
    hashes of an expanded spec) — stores may accumulate several sweeps.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    wanted = set(hashes) if hashes is not None else None
    records = [
        r for r in store.records()
        if wanted is None or r["hash"] in wanted
    ]
    records.sort(key=lambda r: r["hash"])
    return records


def _mean(values: Sequence[float]) -> float:
    return math.fsum(values) / len(values)


def _sample_std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(
        math.fsum((v - mu) ** 2 for v in values) / (len(values) - 1)
    )


def _cell_key(record: Mapping) -> tuple:
    """The grid-cell identity of a record: everything but the seed axis.

    Traffic identity is the canonical scenario spec dict (rate split
    out), not the report's display label — two permutation patterns both
    describe themselves as ``"permutation"`` yet are different cells.
    """
    s = record["scenario"]
    r = record["report"]
    traffic_id = json.dumps(
        {k: v for k, v in s["traffic"].items() if k != "rate"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return (
        s["topology"]["label"],
        r["n_stages"],
        r["size"],
        traffic_id,
        s["traffic"]["rate"],
        s["fault_cells"],
        s["fault_links"],
        s["cycles"],
        s["policy"],
        s["drain"],
    )


def _group_by_cell(
    records: Iterable[Mapping],
) -> dict[tuple, list[tuple[int, SimReport]]]:
    """Group records by grid cell as ``(seed, report)`` pairs.

    Each stored report dict is parsed into a :class:`SimReport` exactly
    once per call, so the derived-rate formulas (throughput, blocking)
    live only in :mod:`repro.sim.metrics`.
    """
    groups: dict[tuple, list[tuple[int, SimReport]]] = {}
    seen: dict[tuple, str] = {}
    for record in records:
        key = _cell_key(record)
        seed = record["scenario"]["seed"]
        run = (*key, seed)
        if run in seen:
            if seen[run] == record["hash"]:
                continue  # literal duplicate record: count it once
            # Same grid cell + seed under two hashes: the store mixes
            # incompatible sweeps (e.g. a topology file changed between
            # runs) — averaging them would silently corrupt every rate.
            raise ReproError(
                f"store holds two different results for {key[0]} "
                f"seed={seed} (hashes {seen[run]} and {record['hash']}); "
                "restrict aggregation to one campaign's scenarios "
                "(report --spec) or use a fresh store"
            )
        seen[run] = record["hash"]
        groups.setdefault(key, []).append(
            (seed, SimReport.from_dict(record["report"]))
        )
    for members in groups.values():
        members.sort(key=lambda m: m[0])
    return groups


def aggregate_rows(records: Iterable[Mapping]) -> list[dict]:
    """One comparison-table row per grid cell, averaged over seeds."""
    rows = []
    for key, members in sorted(_group_by_cell(records).items()):
        label, n_stages, size, _tid, rate, cells, links, cyc, pol, drn = key
        thr = [rep.throughput for _, rep in members]
        blk = [rep.blocking_probability for _, rep in members]
        lat = [rep.mean_latency for _, rep in members]
        unr = [rep.unroutable for _, rep in members]
        rows.append(
            {
                "topology": label,
                "n_stages": n_stages,
                "size": size,
                "traffic": members[0][1].traffic,  # display label
                "rate": rate,
                "fault_cells": cells,
                "fault_links": links,
                "cycles": cyc,
                "policy": pol,
                "drain": drn,
                "seeds": len(members),
                "throughput_mean": _mean(thr),
                "throughput_std": _sample_std(thr),
                "blocking_mean": _mean(blk),
                "latency_mean": _mean(lat),
                "unroutable_total": int(sum(unr)),
            }
        )
    return rows


def aggregate_table(rows: Sequence[Mapping]) -> str:
    """Render aggregate rows as a fixed-width text table."""
    header = (
        f"{'topology':<22} {'traffic':<28} {'rate':>5} {'flt':>7} "
        f"{'seeds':>5} {'thrpt':>7} {'±std':>7} {'block':>7} {'lat':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        flt = f"{row['fault_cells']}c{row['fault_links']}l"
        lines.append(
            f"{row['topology']:<22} {row['traffic']:<28} "
            f"{row['rate']:>5.2f} {flt:>7} {row['seeds']:>5} "
            f"{row['throughput_mean']:>7.4f} {row['throughput_std']:>7.4f} "
            f"{row['blocking_mean']:>7.4f} {row['latency_mean']:>7.2f}"
        )
    return "\n".join(lines)


def head_to_head(
    records: Iterable[Mapping],
    *,
    atol_throughput: float = 0.02,
    atol_latency: float = 0.5,
    z: float = 3.0,
) -> list[dict]:
    """Pairwise comparison of same-shape topologies under identical load.

    Groups grid cells that agree on everything except the topology —
    shape, traffic schedule, rate, fault counts (and, per seed, the very
    fault set, since campaign fault seeds are topology-independent) —
    and compares each topology pair through the *paired* per-seed deltas.

    A pair is ``divergent`` when the mean throughput (or latency) delta
    exceeds the absolute tolerance and ``z`` standard errors — i.e. when
    the difference is too large *and* too consistent to be sampling
    noise.  The standard error takes the largest of three estimates,
    because each one underestimates in a regime the others cover:

    * the *paired* per-seed delta spread — the sharpest when seeds pair
      cleanly, but spuriously small when few deltas happen to agree;
    * the *unpaired* across-seed spread of each topology — under faults
      the same fault coordinates hit different wiring in each topology,
      so per-seed deltas carry the full fault-geometry variance both
      topologies show across draws;
    * a binomial floor ``√(p(1-p)/(cycles·N))`` per run — the resolution
      limit of the simulation itself, which keeps one-seed campaigns
      from flagging differences the run lengths cannot even resolve.
    """
    cells: dict[tuple, dict[str, dict[int, SimReport]]] = {}
    for key, members in _group_by_cell(records).items():
        label, rest = key[0], key[1:]
        cells.setdefault(rest, {})[label] = dict(members)
    results = []
    for rest, by_label in sorted(cells.items()):
        n_stages, size, _tid, rate, fcells, flinks, cyc, pol, drn = rest
        labels = sorted(by_label)
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                seeds_a = by_label[a]
                seeds_b = by_label[b]
                common = sorted(set(seeds_a) & set(seeds_b))
                if not common:
                    continue
                thr_a = [seeds_a[s].throughput for s in common]
                thr_b = [seeds_b[s].throughput for s in common]
                lat_a = [seeds_a[s].mean_latency for s in common]
                lat_b = [seeds_b[s].mean_latency for s in common]
                d_thr = [x - y for x, y in zip(thr_a, thr_b)]
                d_lat = [x - y for x, y in zip(lat_a, lat_b)]
                n = len(common)
                slots = cyc * 2 * size  # delivery opportunities per run
                var_binom = _mean(
                    [
                        sum(
                            max(p * (1.0 - p), 0.25 / slots)
                            for p in (pa, pb)
                        )
                        / slots
                        for pa, pb in zip(thr_a, thr_b)
                    ]
                )
                se_floor = math.sqrt(var_binom / n)

                def _verdict(
                    deltas: list[float],
                    a_vals: list[float],
                    b_vals: list[float],
                    atol: float,
                    floor: float,
                ) -> bool:
                    mu = abs(_mean(deltas))
                    se_paired = _sample_std(deltas) / math.sqrt(n)
                    se_unpaired = math.sqrt(
                        (_sample_std(a_vals) ** 2 + _sample_std(b_vals) ** 2)
                        / n
                    )
                    se = max(se_paired, se_unpaired, floor)
                    return mu > atol and mu > z * se

                results.append(
                    {
                        "topology_a": a,
                        "topology_b": b,
                        "n_stages": n_stages,
                        "size": size,
                        "traffic": seeds_a[common[0]].traffic,
                        "rate": rate,
                        "fault_cells": fcells,
                        "fault_links": flinks,
                        "cycles": cyc,
                        "policy": pol,
                        "drain": drn,
                        "seeds": n,
                        "throughput_delta_mean": _mean(d_thr),
                        "throughput_delta_max": max(abs(d) for d in d_thr),
                        "latency_delta_mean": _mean(d_lat),
                        "latency_delta_max": max(abs(d) for d in d_lat),
                        "divergent": (
                            _verdict(
                                d_thr, thr_a, thr_b, atol_throughput,
                                se_floor,
                            )
                            or _verdict(d_lat, lat_a, lat_b, atol_latency, 0.0)
                        ),
                    }
                )
    return results


def head_to_head_table(entries: Sequence[Mapping]) -> str:
    """Render head-to-head entries as a fixed-width text table."""
    header = (
        f"{'pair':<38} {'traffic':<24} {'rate':>5} {'flt':>7} "
        f"{'Δthrpt':>8} {'Δlat':>7} {'verdict':>10}"
    )
    lines = [header, "-" * len(header)]
    for e in entries:
        pair = f"{e['topology_a']} vs {e['topology_b']}"
        flt = f"{e['fault_cells']}c{e['fault_links']}l"
        verdict = "DIVERGENT" if e["divergent"] else "match"
        lines.append(
            f"{pair:<38} {e['traffic']:<24} {e['rate']:>5.2f} {flt:>7} "
            f"{e['throughput_delta_mean']:>+8.4f} "
            f"{e['latency_delta_mean']:>+7.2f} {verdict:>10}"
        )
    n_div = sum(1 for e in entries if e["divergent"])
    lines.append(
        f"{len(entries)} pairs, {n_div} divergent"
        + ("" if n_div else " — equivalence holds empirically")
    )
    return "\n".join(lines)


def dumps_aggregate(
    records: Iterable[Mapping],
    *,
    indent: int | None = None,
    rows: Sequence[Mapping] | None = None,
    head: Sequence[Mapping] | None = None,
    **h2h_kwargs,
) -> str:
    """The canonical aggregate report as a JSON string.

    Deterministic by construction — sorted rows, sorted keys, no
    ``elapsed`` — so two stores holding the same scenario results
    serialize to byte-identical reports regardless of completion order or
    interruptions.  Pass ``rows``/``head`` when :func:`aggregate_rows`
    and :func:`head_to_head` results are already at hand (the CLI prints
    them as tables first) to skip recomputing them.
    """
    records = list(records)
    doc = {
        "format": _AGGREGATE_FORMAT,
        "version": _AGGREGATE_VERSION,
        "n_scenarios": len(records),
        "rows": list(rows) if rows is not None else aggregate_rows(records),
        "head_to_head": (
            list(head) if head is not None
            else head_to_head(records, **h2h_kwargs)
        ),
    }
    return json.dumps(doc, sort_keys=True, indent=indent)
