"""Campaign engine: parallel scenario sweeps with a persistent store.

One simulation run answers one question; the campaign engine answers
grids of them.  A :class:`~repro.campaign.spec.CampaignSpec` declares a
sweep — topologies × stages × traffic × rates × fault counts × seeds —
which :func:`~repro.campaign.spec.expand_scenarios` unrolls into
digest-keyed :class:`~repro.spec.scenario.ScenarioSpec` values,
:func:`~repro.campaign.runner.run_campaign` fans
out over a ``multiprocessing`` pool into an append-only
:class:`~repro.campaign.store.ResultStore`, and
:mod:`repro.campaign.aggregate` condenses into comparison tables — most
notably the equivalence head-to-head that checks, empirically, that
baseline-equivalent topologies are performance-interchangeable under
identical fault sets (the dynamic face of Theorem 1).

Quickstart
----------
>>> import tempfile, pathlib
>>> from repro.campaign import CampaignSpec, run_campaign, load_records
>>> from repro.campaign import aggregate_rows
>>> spec = CampaignSpec(topologies=("omega", "baseline"), stages=(4,),
...                     rates=(0.8,), seeds=(0, 1), cycles=50)
>>> store = pathlib.Path(tempfile.mkdtemp()) / "sweep.jsonl"
>>> summary = run_campaign(spec, store)
>>> summary["ran"]
4
>>> len(aggregate_rows(load_records(store)))
2

Faults are survived, not fatal: :mod:`repro.campaign.supervisor` wraps
the worker pool in managed dispatch (timeouts, retries with backoff,
crash respawn, numba→numpy degradation), poisonous scenarios land in a
:class:`~repro.campaign.errors.QuarantineStore` sidecar with their full
remote tracebacks, and :mod:`repro.campaign.chaos` injects
deterministic crashes/hangs/raises to prove all of it under test.

On the command line: ``python -m repro campaign run/status/report`` —
plus ``campaign quarantine`` and ``campaign store verify/repair``.
"""

from repro.campaign.aggregate import (
    aggregate_rows,
    aggregate_table,
    dumps_aggregate,
    head_to_head,
    head_to_head_table,
    load_records,
)
from repro.campaign.chaos import ChaosSpec, chaos_from_env, parse_chaos
from repro.campaign.errors import (
    QuarantineStore,
    RemoteTaskError,
    TaskFailure,
    quarantine_path,
)
from repro.campaign.heartbeat import (
    HeartbeatWriter,
    heartbeat_path,
    read_heartbeat,
    watch_campaign,
)
from repro.campaign.reliability import (
    ReliabilitySweepSpec,
    dumps_reliability,
    dumps_sweep,
    loads_sweep,
    reliability_from_store,
    reliability_report,
    reliability_summary_table,
    reliability_table,
)
from repro.campaign.runner import run_campaign, run_scenario
from repro.campaign.spec import (
    CampaignSpec,
    Scenario,
    expand_scenarios,
    scenario_group_key,
    scenario_hash,
)
from repro.campaign.store import ResultStore, record_crc
from repro.campaign.supervisor import SupervisorConfig

__all__ = [
    "CampaignSpec",
    "ChaosSpec",
    "HeartbeatWriter",
    "QuarantineStore",
    "ReliabilitySweepSpec",
    "RemoteTaskError",
    "ResultStore",
    "Scenario",
    "SupervisorConfig",
    "TaskFailure",
    "aggregate_rows",
    "aggregate_table",
    "chaos_from_env",
    "dumps_aggregate",
    "dumps_reliability",
    "dumps_sweep",
    "expand_scenarios",
    "head_to_head",
    "head_to_head_table",
    "heartbeat_path",
    "load_records",
    "loads_sweep",
    "parse_chaos",
    "quarantine_path",
    "read_heartbeat",
    "record_crc",
    "reliability_from_store",
    "reliability_report",
    "reliability_summary_table",
    "reliability_table",
    "run_campaign",
    "run_scenario",
    "scenario_group_key",
    "scenario_hash",
    "watch_campaign",
]
