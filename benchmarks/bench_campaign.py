"""Benchmarks (S2): campaign sweep throughput in scenarios per second.

The campaign engine's unit of work is the *scenario* (one full
simulation run dispatched, executed and persisted).  Two rates are
tracked: inline (``workers=1``, the per-scenario overhead floor) and
pooled (``workers=2``), whose ratio is reported as ``speedup`` in
``extra_info`` — so parallel scaling is *measured*, not assumed.  On a
single-core runner the pooled rate may legitimately sit below 1× (pipe +
fork overhead); the benchmark asserts correctness and a sane floor, and
records the rest.
"""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import CampaignSpec, ResultStore, run_campaign

_counter = itertools.count()

# A grid big enough to amortize pool startup, small enough for CI:
# 3 topologies x 2 rates x 2 fault levels x 2 seeds = 24 scenarios.
SPEC = CampaignSpec(
    topologies=("omega", "baseline", "flip"),
    stages=(5,),
    traffic=("uniform",),
    rates=(0.6, 0.9),
    faults=(0, 2),
    seeds=(0, 1),
    cycles=100,
)

MIN_SCENARIOS_PER_SEC = 5.0  # sanity floor, far below any healthy run


def _sweep(tmp_path, workers: int, supervised: bool = True) -> dict:
    store = tmp_path / f"sweep-{next(_counter)}.jsonl"
    summary = run_campaign(
        SPEC, store, workers=workers, supervised=supervised
    )
    assert summary["ran"] == SPEC.n_scenarios
    assert len(ResultStore(store)) == SPEC.n_scenarios
    return summary


@pytest.fixture(scope="module")
def rates() -> dict:
    """Scenario rates shared by the benches for the speedup ratio."""
    return {}


def bench_campaign_inline(benchmark, tmp_path, rates):
    benchmark(_sweep, tmp_path, 1)
    rate = SPEC.n_scenarios / benchmark.stats.stats.mean
    rates["inline"] = rate
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)
    assert rate >= MIN_SCENARIOS_PER_SEC


def bench_campaign_pool2(benchmark, tmp_path, rates):
    benchmark(_sweep, tmp_path, 2)
    rate = SPEC.n_scenarios / benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)
    if "inline" in rates:
        benchmark.extra_info["speedup"] = round(rate / rates["inline"], 2)
    assert rate >= MIN_SCENARIOS_PER_SEC


# Chaos off, the supervised engine must cost at most this fraction of
# the direct-pool rate (managed dispatch adds queue hops + polling).
MAX_SUPERVISOR_OVERHEAD = 0.05


def bench_campaign_pool2_direct(benchmark, tmp_path):
    """The pre-supervisor ``Pool.imap_unordered`` overhead baseline."""
    benchmark(_sweep, tmp_path, 2, supervised=False)
    rate = SPEC.n_scenarios / benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)
    assert rate >= MIN_SCENARIOS_PER_SEC


def bench_supervisor_overhead(benchmark, tmp_path):
    """Guard: supervision within 5% of the direct pool, chaos off.

    Each benchmark round runs a direct/supervised pair back-to-back and
    times both sides itself, so machine-load drift between separately
    benchmarked tests cancels out; the guard compares the per-mode
    *minima* (the least-noisy statistic on shared runners).
    """
    import time

    times = {"direct": [], "supervised": []}

    def pair() -> None:
        for mode, supervised in (("direct", False), ("supervised", True)):
            t0 = time.perf_counter()
            _sweep(tmp_path, 2, supervised=supervised)
            times[mode].append(time.perf_counter() - t0)

    benchmark.pedantic(pair, rounds=3, iterations=1)
    ratio = min(times["supervised"]) / min(times["direct"])
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["supervised_vs_direct"] = round(ratio, 3)
    assert ratio <= 1.0 + MAX_SUPERVISOR_OVERHEAD, (
        f"supervised engine is {(ratio - 1.0) * 100:.1f}% slower than "
        f"the direct pool (allowed: "
        f"{MAX_SUPERVISOR_OVERHEAD * 100:.0f}%)"
    )
