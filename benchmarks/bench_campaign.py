"""Benchmarks (S2): campaign sweep throughput in scenarios per second.

The campaign engine's unit of work is the *scenario* (one full
simulation run dispatched, executed and persisted).  Two rates are
tracked: inline (``workers=1``, the per-scenario overhead floor) and
pooled (``workers=2``), whose ratio is reported as ``speedup`` in
``extra_info`` — so parallel scaling is *measured*, not assumed.  On a
single-core runner the pooled rate may legitimately sit below 1× (pipe +
fork overhead); the benchmark asserts correctness and a sane floor, and
records the rest.
"""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import CampaignSpec, ResultStore, run_campaign

_counter = itertools.count()

# A grid big enough to amortize pool startup, small enough for CI:
# 3 topologies x 2 rates x 2 fault levels x 2 seeds = 24 scenarios.
SPEC = CampaignSpec(
    topologies=("omega", "baseline", "flip"),
    stages=(5,),
    traffic=("uniform",),
    rates=(0.6, 0.9),
    faults=(0, 2),
    seeds=(0, 1),
    cycles=100,
)

MIN_SCENARIOS_PER_SEC = 5.0  # sanity floor, far below any healthy run


def _sweep(tmp_path, workers: int) -> dict:
    store = tmp_path / f"sweep-{next(_counter)}.jsonl"
    summary = run_campaign(SPEC, store, workers=workers)
    assert summary["ran"] == SPEC.n_scenarios
    assert len(ResultStore(store)) == SPEC.n_scenarios
    return summary


@pytest.fixture(scope="module")
def rates() -> dict:
    """Scenario rates shared by the benches for the speedup ratio."""
    return {}


def bench_campaign_inline(benchmark, tmp_path, rates):
    benchmark(_sweep, tmp_path, 1)
    rate = SPEC.n_scenarios / benchmark.stats.stats.mean
    rates["inline"] = rate
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)
    assert rate >= MIN_SCENARIOS_PER_SEC


def bench_campaign_pool2(benchmark, tmp_path, rates):
    benchmark(_sweep, tmp_path, 2)
    rate = SPEC.n_scenarios / benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)
    if "inline" in rates:
        benchmark.extra_info["speedup"] = round(rate / rates["inline"], 2)
    assert rate >= MIN_SCENARIOS_PER_SEC
