"""Benchmarks (T4): the Theorem 3 pipeline — sample, decide, witness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equivalence import (
    baseline_isomorphism,
    is_baseline_equivalent,
    verify_isomorphism,
)
from repro.networks.baseline import baseline
from repro.networks.random_nets import random_independent_banyan_network


@pytest.fixture(scope="module", params=[5, 7, 9])
def theorem3_instance(request):
    n = request.param
    net = random_independent_banyan_network(
        np.random.default_rng(100 + n), n
    )
    return n, net


def bench_decide_equivalence(benchmark, theorem3_instance):
    _n, net = theorem3_instance
    assert benchmark(is_baseline_equivalent, net)


def bench_explicit_witness(benchmark, theorem3_instance):
    n, net = theorem3_instance
    iso = benchmark(baseline_isomorphism, net)
    assert iso is not None
    assert verify_isomorphism(net, baseline(n), iso)
