"""Benchmarks (A5): the radix-k generalization kernels."""

from __future__ import annotations

import pytest

from repro.radix import (
    baseline_k,
    omega_k,
    radix_find_isomorphism,
    radix_is_banyan,
    radix_is_baseline_equivalent,
)


@pytest.fixture(scope="module", params=[(5, 2), (4, 3), (3, 4)])
def radix_pair(request):
    n, k = request.param
    return omega_k(n, k), baseline_k(n, k)


def bench_radix_banyan(benchmark, radix_pair):
    o, _b = radix_pair
    assert benchmark(radix_is_banyan, o)


def bench_radix_characterization(benchmark, radix_pair):
    o, _b = radix_pair
    assert benchmark(radix_is_baseline_equivalent, o)


def bench_radix_explicit_isomorphism(benchmark, radix_pair):
    o, b = radix_pair
    assert benchmark(radix_find_isomorphism, o, b) is not None
