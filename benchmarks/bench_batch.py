"""Benchmarks (S3): batched simulation throughput.

The batched engine's unit of work is the *scenario slab*: B same-shape
scenarios pushed through one set of packet-compacted kernels
(:func:`repro.sim.batch.simulate_batch`).  Tracked figures, all in
``extra_info`` (shared emitter schema — ``backend``,
``scenarios_per_sec``, ``speedup``): batched ``hops_per_sec`` and
``scenarios_per_sec``, and ``speedup`` — the measured ratio over running
the same scenarios through per-scenario
:func:`~repro.sim.engine.simulate` calls.
Target from this PR onward: >= 4x scenarios/sec for a 64-scenario
uniform-load batch on the 1024-port Omega network, with the batched
reports bit-identical to the sequential ones.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.networks.omega import omega
from repro.sim import (
    BatchScenario,
    FaultSet,
    UniformTraffic,
    compile_network,
    simulate,
    simulate_batch,
)

BATCH = 64
CYCLES = 50
SPEEDUP_TARGET = 4.0          # batched vs sequential scenarios/sec
HOPS_TARGET = 1_000_000       # batched path must beat the engine target


@pytest.fixture(scope="module")
def omega10():
    net = omega(10)  # 1024 terminal ports
    compile_network(net)  # both paths measure from a warm compile cache
    return net


@pytest.fixture(scope="module")
def scenarios():
    return [
        BatchScenario(UniformTraffic(rate=1.0), seed=i)
        for i in range(BATCH)
    ]


@pytest.fixture(scope="module")
def sequential_rate(omega10, scenarios) -> float:
    """Per-scenario ``simulate`` throughput in scenarios/sec (best of 2).

    Pinned to the NumPy backend: this benchmark tracks the scenario-axis
    batching win of the reference kernels (``bench_kernels.py`` owns the
    cross-backend comparison), so ``auto`` resolving to numba on a
    ``fast`` install must not change what is being measured.

    Elapsed time comes from span data — each pass runs under an
    in-memory tracer and sums its ``simulate`` root spans — instead of
    an ad-hoc ``perf_counter`` wrap, so this fixture measures exactly
    what a ``--trace`` of the same run reports.
    """
    times = []
    for _ in range(2):
        with obs.tracing() as tr:
            for s in scenarios:
                simulate(
                    omega10, s.traffic, cycles=CYCLES, seed=s.seed,
                    backend="numpy",
                )
            totals = obs.span_totals(tr.events)
        times.append(totals["simulate"]["total_s"])
    return BATCH / min(times)


def bench_batch_uniform_64x1024(
    benchmark, omega10, scenarios, sequential_rate
):
    reports = benchmark(
        simulate_batch, omega10, scenarios, cycles=CYCLES, backend="numpy"
    )
    mean = benchmark.stats.stats.mean
    rate = BATCH / mean
    hops = sum(r.total_hops for r in reports) / mean
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)
    benchmark.extra_info["hops_per_sec"] = round(hops)
    benchmark.extra_info["speedup"] = round(rate / sequential_rate, 2)
    assert hops >= HOPS_TARGET
    assert rate >= SPEEDUP_TARGET * sequential_rate
    # The oracle ride-along: slab results are the sequential results.
    want = simulate(
        omega10, scenarios[0].traffic, cycles=CYCLES,
        seed=scenarios[0].seed, backend="numpy",
    ).to_dict()
    got = reports[0].to_dict()
    want.pop("elapsed")
    got.pop("elapsed")
    assert want == got


def bench_batch_faulted_16x1024(benchmark, omega10, rng):
    faults = FaultSet.random(
        rng, omega10.n_stages, omega10.size, n_dead_cells=8, n_dead_links=16
    )
    scns = [
        BatchScenario(UniformTraffic(rate=0.9), seed=i) for i in range(16)
    ]
    reports = benchmark(
        simulate_batch, omega10, scns, cycles=CYCLES, faults=faults,
        backend="numpy",
    )
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(len(scns) / mean, 1)
    assert all(r.unroutable > 0 for r in reports)
