"""Benchmarks (T5/F4): PIPID application, materialization, detection."""

from __future__ import annotations

import numpy as np

from repro.permutations.catalog import perfect_shuffle
from repro.permutations.connection_map import (
    pipid_connection,
    pipid_from_connection,
)
from repro.permutations.pipid import as_pipid

N_DIGITS = 12  # 4096 links


def bench_pipid_apply_vectorized(benchmark):
    sigma = perfect_shuffle(N_DIGITS)
    xs = np.arange(1 << N_DIGITS)
    out = benchmark(sigma.apply, xs)
    assert out.shape == xs.shape


def bench_pipid_to_permutation(benchmark):
    sigma = perfect_shuffle(N_DIGITS)
    perm = benchmark(sigma.to_permutation)
    assert perm.n == 1 << N_DIGITS


def bench_pipid_detection_positive(benchmark):
    perm = perfect_shuffle(N_DIGITS).to_permutation()
    assert benchmark(as_pipid, perm) is not None


def bench_pipid_connection_induction(benchmark):
    sigma = perfect_shuffle(N_DIGITS)
    conn = benchmark(pipid_connection, sigma)
    assert conn.size == 1 << (N_DIGITS - 1)


def bench_pipid_recovery_from_connection(benchmark):
    conn = pipid_connection(perfect_shuffle(N_DIGITS))
    rec = benchmark(pipid_from_connection, conn)
    assert rec == perfect_shuffle(N_DIGITS)
