"""Benchmarks (S5): observability overhead.

The :mod:`repro.obs` contract is **near-zero cost while disabled**:
every instrumented call site in the hot path is a guarded ``if
obs.enabled()`` or a ``with obs.span(...)`` that returns the shared
no-op span.  This suite pins that contract with numbers:

* ``bench_obs_disabled_overhead_on_sim`` — the guard.  It measures the
  per-site cost of the disabled path, scales it by a *generous* bound on
  the instrumented sites one ``simulate`` run crosses, and asserts the
  total stays under ``OVERHEAD_BUDGET`` (2%) of the ``bench_sim``
  reference workload's wall time.
* ``bench_obs_tracer_throughput`` — span events/sec of an enabled
  in-memory tracer, so a regression that makes *enabled* tracing slow
  enough to distort what it measures is also caught.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.networks.omega import omega
from repro.sim import UniformTraffic, compile_network, simulate

CYCLES = 50
#: Upper bound on guarded telemetry call sites one ``simulate`` run
#: crosses (4 spans + enabled() checks + the compile-cache mirror);
#: deliberately ~2x the real count so the guard stays conservative.
SITES_PER_RUN = 24
OVERHEAD_BUDGET = 0.02        # disabled telemetry: < 2% of bench_sim
LOOP = 1000


@pytest.fixture(scope="module")
def omega10():
    net = omega(10)  # 1024 terminal ports — the bench_sim workload
    compile_network(net)
    return net


def _disabled_sites(n: int) -> None:
    """``n`` round-trips through the disabled instrumentation path.

    Mirrors what the engine actually executes per guarded site while no
    tracer is installed: the ``enabled()`` check plus a ``with
    obs.span(...)`` block carrying attrs and a counter update on the
    shared no-op span.
    """
    for _ in range(n):
        if obs.enabled():  # pragma: no cover - tracing is off here
            raise AssertionError("tracer must be off in this bench")
        with obs.span("x", cycles=50, policy="drop") as sp:
            sp.add("offered", 1)


def bench_obs_disabled_overhead_on_sim(benchmark, omega10):
    assert not obs.enabled()
    # The reference workload: bench_sim's uniform full-load run (best
    # of 2, warm compile cache).
    walls = []
    for _ in range(2):
        t0 = time.perf_counter()
        simulate(omega10, UniformTraffic(rate=1.0), cycles=CYCLES, seed=1)
        walls.append(time.perf_counter() - t0)
    sim_wall = min(walls)

    benchmark(_disabled_sites, LOOP)
    per_site = benchmark.stats.stats.mean / LOOP
    overhead = per_site * SITES_PER_RUN / sim_wall
    benchmark.extra_info["ns_per_disabled_site"] = round(per_site * 1e9, 1)
    benchmark.extra_info["sim_wall_ms"] = round(sim_wall * 1e3, 2)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 6)
    assert overhead < OVERHEAD_BUDGET


def bench_obs_tracer_throughput(benchmark):
    def spans(n: int) -> int:
        with obs.tracing() as tr:
            for _ in range(n):
                with obs.span("unit", kind="bench") as sp:
                    sp.add("n", 1)
            return len(tr.events)

    count = benchmark(spans, LOOP)
    assert count == LOOP
    rate = LOOP / benchmark.stats.stats.mean
    benchmark.extra_info["spans_per_sec"] = round(rate)
