"""Benchmarks: network construction kernels (F1 and generator costs)."""

from __future__ import annotations

import numpy as np

from repro.networks.baseline import baseline, baseline_pipid
from repro.networks.omega import omega
from repro.networks.random_nets import (
    random_independent_banyan_network,
    random_recursive_buddy_network,
)


def bench_baseline_recursive_n8(benchmark):
    net = benchmark(baseline, 8)
    assert net.n_stages == 8


def bench_baseline_pipid_n8(benchmark):
    net = benchmark(baseline_pipid, 8)
    assert net == baseline(8)


def bench_omega_n10(benchmark):
    net = benchmark(omega, 10)
    assert net.size == 512


def bench_random_independent_banyan_n6(benchmark):
    def build():
        return random_independent_banyan_network(
            np.random.default_rng(1), 6
        )

    net = benchmark(build)
    assert net.n_stages == 6


def bench_random_recursive_buddy_n8(benchmark):
    def build():
        return random_recursive_buddy_network(np.random.default_rng(1), 8)

    net = benchmark(build)
    assert net.n_stages == 8
