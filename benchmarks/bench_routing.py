"""Benchmarks (R1): routing kernels — schedules, routes, blocking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.networks.omega import omega
from repro.permutations.permutation import Permutation
from repro.routing.bit_routing import destination_tag_schedule, route
from repro.routing.paths import reachable_outputs
from repro.routing.permutation_routing import (
    count_link_conflicts,
    route_permutation,
)


@pytest.fixture(scope="module")
def omega8():
    return omega(8)


def bench_reachability_n8(benchmark, omega8):
    reach = benchmark(reachable_outputs, omega8)
    assert reach[0].all()


def bench_schedule_derivation_n8(benchmark, omega8):
    schedule = benchmark(destination_tag_schedule, omega8)
    assert schedule == list(range(7, -1, -1))


def bench_single_route_n8(benchmark, omega8):
    reach = reachable_outputs(omega8)
    r = benchmark(route, omega8, 3, 200, reach)
    assert r.output == 200


def bench_route_full_permutation_n8(benchmark, omega8):
    perm = Permutation(
        np.random.default_rng(9).permutation(omega8.n_inputs)
    )
    routes = benchmark(route_permutation, omega8, perm)
    assert len(routes) == 256


def bench_conflict_counting_n8(benchmark, omega8):
    perm = Permutation(
        np.random.default_rng(10).permutation(omega8.n_inputs)
    )
    routes = route_permutation(omega8, perm)
    conflicts = benchmark(count_link_conflicts, routes)
    assert conflicts >= 0
