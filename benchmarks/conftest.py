"""Shared fixtures for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each experiment id from DESIGN.md §4 has a bench regenerating its kernel;
``bench_scaling.py`` carries the A4 size sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0xBE7C4)
