"""Benchmarks (T2): the Proposition 1 reverse construction, both cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.independence import random_independent_connection
from repro.core.reverse import reverse_connection

M_DIGITS = 9


@pytest.fixture(scope="module")
def case1_connection():
    return random_independent_connection(
        np.random.default_rng(4), M_DIGITS, case=1
    )


@pytest.fixture(scope="module")
def case2_connection():
    return random_independent_connection(
        np.random.default_rng(5), M_DIGITS, case=2
    )


def bench_reverse_case1(benchmark, case1_connection):
    cert = benchmark(reverse_connection, case1_connection)
    assert cert.case == 1


def bench_reverse_case2(benchmark, case2_connection):
    cert = benchmark(reverse_connection, case2_connection)
    assert cert.case == 2
