"""Benchmarks: reliability sweep and aggregation throughput.

Two rates are tracked.  ``bench_reliability_sweep`` times the full
pipeline — a nested-fault campaign over omega vs its extra-stage
variant plus the reliability reduction — in scenarios per second, the
same unit the campaign benches use.  ``bench_reliability_report`` times
the pure reduction over a pre-run store in records per second; its cost
is dominated by the memoized structural-availability evaluations, so a
regression here usually means the memo key or the reachability sweep
changed.
"""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import (
    ReliabilitySweepSpec,
    load_records,
    reliability_report,
    run_campaign,
)

_counter = itertools.count()

# 2 topologies x 7 fault counts x 4 draws = 56 scenarios, CI-sized.
SPEC = ReliabilitySweepSpec(
    networks=("omega", "extra_stage_omega"),
    stages=4,
    rate=0.8,
    draws=4,
    max_faults=6,
    cycles=100,
)

MIN_SCENARIOS_PER_SEC = 5.0  # sanity floor, far below any healthy run
MIN_RECORDS_PER_SEC = 200.0


def _n_scenarios() -> int:
    return len(SPEC.networks) * (SPEC.max_faults + 1) * SPEC.draws


def _sweep_and_reduce(tmp_path) -> dict:
    store = tmp_path / f"rel-{next(_counter)}.jsonl"
    summary = run_campaign(SPEC.to_campaign(), store)
    assert summary["ran"] == _n_scenarios()
    report = reliability_report(
        load_records(store),
        threshold=SPEC.threshold,
        baseline=SPEC.baseline_label(),
    )
    assert report["summary"]
    return report


def bench_reliability_sweep(benchmark, tmp_path):
    benchmark(_sweep_and_reduce, tmp_path)
    rate = _n_scenarios() / benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)
    assert rate >= MIN_SCENARIOS_PER_SEC


@pytest.fixture(scope="module")
def stored_records(tmp_path_factory) -> list:
    store = tmp_path_factory.mktemp("reliability") / "sweep.jsonl"
    run_campaign(SPEC.to_campaign(), store)
    return load_records(store)


def bench_reliability_report(benchmark, stored_records):
    report = benchmark(
        reliability_report, stored_records, threshold=SPEC.threshold
    )
    assert len(report["curves"]) == 2 * (SPEC.max_faults + 1)
    rate = len(stored_records) / benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["records_per_sec"] = round(rate, 1)
    assert rate >= MIN_RECORDS_PER_SEC
