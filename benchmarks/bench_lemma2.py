"""Benchmarks (F3/T3): the Lemma 2 component-intersection law."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.properties import (
    component_stage_intersections,
    p_star_n,
)
from repro.networks.baseline import baseline
from repro.networks.random_nets import random_independent_banyan_network


@pytest.fixture(scope="module")
def theorem3_net_n8():
    return random_independent_banyan_network(np.random.default_rng(6), 8)


def bench_intersection_table_baseline_n8(benchmark):
    net = baseline(8)

    def table():
        return [
            component_stage_intersections(net, j)
            for j in range(1, net.n_stages + 1)
        ]

    rows = benchmark(table)
    assert len(rows) == 8


def bench_p_star_n_on_random_independent(benchmark, theorem3_net_n8):
    assert benchmark(p_star_n, theorem3_net_n8)


def bench_lemma2_full_verification(benchmark, theorem3_net_n8):
    """The complete T3 check for one network: P(*, n) plus the
    per-stage intersection cardinality law."""
    net = theorem3_net_n8
    n = net.n_stages

    def verify() -> bool:
        if not p_star_n(net):
            return False
        for j in range(1, n + 1):
            for row in component_stage_intersections(net, j):
                if any(v != 1 << (n - j) for v in row):
                    return False
        return True

    assert benchmark(verify)
