"""Benchmarks (S4): kernel backend throughput.

One slab — 64 uniform-load scenarios on the 1024-port Omega network —
pushed through each registered kernel backend of
:mod:`repro.sim.kernels`, reporting ``scenarios_per_sec`` per backend
and, for the fused numba backend, ``speedup`` over the
packet-compacted NumPy batch path (the PR 3/4 kernels).  Target: the
fused JIT loop runs the slab **>= 3x** faster than the NumPy backend,
with bit-identical reports — the oracle rides along in the numba bench.

The numba bench is skip-marked when the optional package is absent
(``pip install -e .[fast]``); the NumPy bench always runs, so the
reference backend's throughput stays tracked on every installation.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.networks.omega import omega
from repro.sim import (
    BatchScenario,
    UniformTraffic,
    compile_network,
    numba_available,
    simulate_batch,
)

BATCH = 64
CYCLES = 50
NUMBA_SPEEDUP_TARGET = 3.0    # fused JIT loop vs the NumPy batch path


@pytest.fixture(scope="module")
def omega10():
    net = omega(10)  # 1024 terminal ports
    compile_network(net)  # every backend measures from a warm compile
    return net


@pytest.fixture(scope="module")
def scenarios():
    return [
        BatchScenario(UniformTraffic(rate=1.0), seed=i)
        for i in range(BATCH)
    ]


@pytest.fixture(scope="module")
def numpy_rate(omega10, scenarios) -> float:
    """NumPy-backend slab throughput in scenarios/sec (best of 2).

    Elapsed time comes from span data — each pass runs under an
    in-memory tracer and reads its ``run_batch`` root span — so the
    fixture measures exactly what a ``--trace`` of the run reports.
    """
    times = []
    for _ in range(2):
        with obs.tracing() as tr:
            simulate_batch(
                omega10, scenarios, cycles=CYCLES, backend="numpy"
            )
            totals = obs.span_totals(tr.events)
        times.append(totals["run_batch"]["total_s"])
    return BATCH / min(times)


def bench_kernels_numpy_64x1024(benchmark, omega10, scenarios):
    benchmark(
        simulate_batch, omega10, scenarios, cycles=CYCLES, backend="numpy"
    )
    rate = BATCH / benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)


@pytest.mark.skipif(
    not numba_available(),
    reason="numba backend not installed (pip install -e .[fast])",
)
def bench_kernels_numba_64x1024(benchmark, omega10, scenarios, numpy_rate):
    # One untimed call pays the lazy JIT compile before measurement.
    warm = simulate_batch(
        omega10, scenarios, cycles=CYCLES, backend="numba"
    )
    reports = benchmark(
        simulate_batch, omega10, scenarios, cycles=CYCLES, backend="numba"
    )
    rate = BATCH / benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = "numba"
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 1)
    benchmark.extra_info["speedup"] = round(rate / numpy_rate, 2)
    assert rate >= NUMBA_SPEEDUP_TARGET * numpy_rate
    # The oracle ride-along: fused results are the NumPy results.
    want = simulate_batch(
        omega10, scenarios[:1], cycles=CYCLES, backend="numpy"
    )[0].to_dict()
    for got_report in (warm[0], reports[0]):
        got = got_report.to_dict()
        want.pop("elapsed", None)
        got.pop("elapsed", None)
        assert want == got
