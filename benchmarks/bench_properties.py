"""Benchmarks: the P property sweeps and the Banyan check (§2 kernels).

The paper's claim that its characterization is "very easy to check" rests
on these being near-linear — compare with bench_equivalence / bench_scaling
for the search-based alternatives.
"""

from __future__ import annotations

import pytest

from repro.core.properties import (
    is_banyan,
    p_one_star,
    p_profile,
    p_star_n,
    path_count_matrix,
)
from repro.networks.omega import omega


@pytest.fixture(scope="module")
def omega8():
    return omega(8)


@pytest.fixture(scope="module")
def omega10():
    return omega(10)


def bench_p_one_star_n8(benchmark, omega8):
    assert benchmark(p_one_star, omega8)


def bench_p_star_n_n8(benchmark, omega8):
    assert benchmark(p_star_n, omega8)


def bench_is_banyan_n8(benchmark, omega8):
    assert benchmark(is_banyan, omega8)


def bench_path_count_matrix_n8(benchmark, omega8):
    mat = benchmark(path_count_matrix, omega8)
    assert mat.shape == (128, 128)


def bench_p_profile_n8(benchmark, omega8):
    prof = benchmark(p_profile, omega8)
    assert prof[(1, 8)] == 1


def bench_is_banyan_n10(benchmark, omega10):
    assert benchmark(is_banyan, omega10)


def bench_p_one_star_n10(benchmark, omega10):
    assert benchmark(p_one_star, omega10)
