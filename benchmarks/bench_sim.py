"""Benchmarks (S1): the traffic-simulation hot path.

The engine's unit of work is the *packet-stage hop* (one packet advancing
one stage in one cycle).  The headline target tracked from this PR onward:
>= 1M simulated hops/sec on the 1024-port Omega network (``omega(10)``,
512 cells x 10 stages) under full uniform load.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.networks.omega import omega
from repro.permutations.permutation import Permutation
from repro.routing.permutation_routing import (
    permutation_from_switch_settings,
)
from repro.sim import (
    FaultSet,
    HotspotTraffic,
    PermutationTraffic,
    UniformTraffic,
    simulate,
)

HOPS_TARGET = 1_000_000  # packet-stage hops per second, 1024-port omega


@pytest.fixture(scope="module")
def omega10():
    return omega(10)  # 1024 terminal ports


def _hops_per_sec(report) -> float:
    return report.total_hops / max(report.elapsed, 1e-12)


def bench_sim_uniform_full_load_1024(benchmark, omega10):
    report = benchmark(
        simulate, omega10, UniformTraffic(rate=1.0), cycles=50, seed=1
    )
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["hops_per_sec"] = round(_hops_per_sec(report))
    assert report.delivered > 0
    assert _hops_per_sec(report) >= HOPS_TARGET


def bench_sim_passable_permutation_1024(benchmark, omega10):
    # Every packet advances every cycle: the engine's peak hop rate.
    rng = np.random.default_rng(2)
    settings = [
        rng.integers(0, 2, omega10.size) for _ in range(omega10.n_stages)
    ]
    perm = permutation_from_switch_settings(omega10, settings)
    report = benchmark(
        simulate, omega10, PermutationTraffic(perm), cycles=50, seed=1
    )
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["hops_per_sec"] = round(_hops_per_sec(report))
    assert report.dropped == 0
    assert _hops_per_sec(report) >= HOPS_TARGET


def bench_sim_hotspot_block_policy_1024(benchmark, omega10):
    report = benchmark(
        simulate,
        omega10,
        HotspotTraffic(rate=0.8),
        cycles=50,
        seed=1,
        policy="block",
    )
    benchmark.extra_info["backend"] = "numpy"
    benchmark.extra_info["hops_per_sec"] = round(_hops_per_sec(report))
    assert report.dropped == 0


def bench_sim_faulted_1024(benchmark, omega10, rng):
    faults = FaultSet.random(
        rng, omega10.n_stages, omega10.size, n_dead_cells=8, n_dead_links=16
    )
    report = benchmark(
        simulate,
        omega10,
        UniformTraffic(rate=0.9),
        cycles=50,
        seed=1,
        faults=faults,
    )
    assert report.unroutable > 0
