"""Benchmarks (A1–A3): counterexample detection costs.

How quickly do the different characterizations *reject* a Banyan network
that is not Baseline-equivalent?
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.bidelta import is_bidelta
from repro.analysis.buddy import network_is_fully_buddied
from repro.core.equivalence import is_baseline_equivalent
from repro.core.isomorphism import find_isomorphism
from repro.networks.baseline import baseline
from repro.networks.counterexamples import cycle_banyan
from repro.networks.random_nets import random_recursive_buddy_network


@pytest.fixture(scope="module")
def cycle_n7():
    return cycle_banyan(7)


def bench_a1_characterization_rejects(benchmark, cycle_n7):
    assert not benchmark(is_baseline_equivalent, cycle_n7)


def bench_a1_search_rejects(benchmark, cycle_n7):
    ref = baseline(7)
    assert benchmark(find_isomorphism, cycle_n7, ref) is None


def bench_a2_buddy_check(benchmark):
    net = random_recursive_buddy_network(np.random.default_rng(8), 7)
    assert benchmark(network_is_fully_buddied, net)


def bench_a3_bidelta_rejects(benchmark, cycle_n7):
    assert not benchmark(is_bidelta, cycle_n7)
