"""Benchmarks (A4/T1): the three ways to decide Baseline equivalence.

1. the paper's characterization (property sweeps),
2. our stage-respecting explicit isomorphism search,
3. networkx VF2 on the raw MultiDiGraph.

The paper's point is the gap between 1 and the rest.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.equivalence import is_baseline_equivalent
from repro.core.isomorphism import find_isomorphism
from repro.networks.baseline import baseline
from repro.networks.omega import omega


@pytest.fixture(scope="module")
def pair_n4():
    return omega(4), baseline(4)


@pytest.fixture(scope="module")
def pair_n7():
    return omega(7), baseline(7)


def bench_characterization_n4(benchmark, pair_n4):
    net, _ = pair_n4
    assert benchmark(is_baseline_equivalent, net)


def bench_explicit_isomorphism_n4(benchmark, pair_n4):
    net, ref = pair_n4
    assert benchmark(find_isomorphism, net, ref) is not None


def bench_networkx_vf2_n4(benchmark, pair_n4):
    net, ref = pair_n4
    match = nx.algorithms.isomorphism.categorical_node_match("stage", -1)
    g, h = net.to_networkx(), ref.to_networkx()
    assert benchmark(
        lambda: nx.is_isomorphic(g, h, node_match=match)
    )


def bench_characterization_n7(benchmark, pair_n7):
    net, _ = pair_n7
    assert benchmark(is_baseline_equivalent, net)


def bench_explicit_isomorphism_n7(benchmark, pair_n7):
    net, ref = pair_n7
    assert benchmark(find_isomorphism, net, ref) is not None
