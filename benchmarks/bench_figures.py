"""Benchmarks (F1–F5): regenerating each figure end to end."""

from __future__ import annotations

from repro.experiments import registry


def bench_fig1_baseline_diagram(benchmark):
    result = benchmark(registry()["F1"])
    assert result.passed


def bench_fig2_labeling(benchmark):
    result = benchmark(registry()["F2"])
    assert result.passed


def bench_fig3_lemma2_table(benchmark):
    result = benchmark(registry()["F3"])
    assert result.passed


def bench_fig4_link_permutation(benchmark):
    result = benchmark(registry()["F4"])
    assert result.passed


def bench_fig5_degenerate_stage(benchmark):
    result = benchmark(registry()["F5"])
    assert result.passed
