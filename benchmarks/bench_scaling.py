"""Benchmarks (A4): the "easy to check" claim, swept over network size.

Parametrized over n so ``--benchmark-only`` output shows the scaling shape
of each decider side by side.
"""

from __future__ import annotations

import pytest

from repro.core.equivalence import is_baseline_equivalent
from repro.core.isomorphism import find_isomorphism
from repro.networks.baseline import baseline
from repro.networks.omega import omega


@pytest.fixture(scope="module", params=[4, 6, 8, 10])
def sized_pair(request):
    n = request.param
    return n, omega(n), baseline(n)


def bench_characterization_scaling(benchmark, sized_pair):
    n, net, _ref = sized_pair
    benchmark.extra_info["n"] = n
    benchmark.extra_info["inputs"] = 1 << n
    assert benchmark(is_baseline_equivalent, net)


def bench_explicit_search_scaling(benchmark, sized_pair):
    n, net, ref = sized_pair
    benchmark.extra_info["n"] = n
    benchmark.extra_info["inputs"] = 1 << n
    assert benchmark(find_isomorphism, net, ref) is not None
