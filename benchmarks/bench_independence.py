"""Benchmarks: independence checking — affine O(M·m) vs definitional O(M²).

The derived affine normal form is what makes the §3 definition practical
at size; this pair of benches quantifies the gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.independence import (
    beta_map,
    is_independent,
    is_independent_definitional,
    random_independent_connection,
)

M_DIGITS = 9  # 512 cells


@pytest.fixture(scope="module")
def big_connection():
    return random_independent_connection(np.random.default_rng(2), M_DIGITS)


def bench_is_independent_affine(benchmark, big_connection):
    assert benchmark(is_independent, big_connection)


def bench_is_independent_definitional(benchmark, big_connection):
    assert benchmark(is_independent_definitional, big_connection)


def bench_beta_map(benchmark, big_connection):
    betas = benchmark(beta_map, big_connection)
    assert betas[0] == 0


def bench_random_generation(benchmark):
    def gen():
        return random_independent_connection(
            np.random.default_rng(3), M_DIGITS
        )

    conn = benchmark(gen)
    assert conn.size == 1 << M_DIGITS
