"""Benchmarks: the looping algorithm versus Banyan blocking (R1's coda).

The Banyan networks of the paper block almost every permutation; the Beneš
network realizes all of them.  These benches measure what that costs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.networks.benes import benes
from repro.permutations.permutation import Permutation
from repro.routing.permutation_routing import (
    permutation_from_switch_settings,
)
from repro.routing.rearrangeable import benes_switch_settings


@pytest.fixture(scope="module", params=[5, 7, 9])
def benes_instance(request):
    n = request.param
    perm = Permutation.random(np.random.default_rng(n), 2**n)
    return benes(n), perm


def bench_looping_algorithm(benchmark, benes_instance):
    _net, perm = benes_instance
    settings = benchmark(benes_switch_settings, perm)
    assert len(settings) == 2 * (perm.n.bit_length() - 1) - 1


def bench_settings_simulation(benchmark, benes_instance):
    net, perm = benes_instance
    settings = benes_switch_settings(perm)
    realized = benchmark(permutation_from_switch_settings, net, settings)
    assert realized == perm
