"""Benchmarks (T6): the Wu–Feng pairwise equivalence table."""

from __future__ import annotations

import pytest

from repro.core.equivalence import is_baseline_equivalent
from repro.core.isomorphism import find_isomorphism
from repro.networks.catalog import CLASSICAL_NETWORKS


@pytest.fixture(scope="module")
def nets_n5():
    return {name: b(5) for name, b in CLASSICAL_NETWORKS.items()}


def bench_all_six_characterizations(benchmark, nets_n5):
    def decide_all():
        return all(is_baseline_equivalent(net) for net in nets_n5.values())

    assert benchmark(decide_all)


def bench_pairwise_isomorphism_table(benchmark, nets_n5):
    names = sorted(nets_n5)

    def table():
        count = 0
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if find_isomorphism(nets_n5[a], nets_n5[b]) is not None:
                    count += 1
        return count

    assert benchmark(table) == 15  # all C(6, 2) pairs isomorphic
